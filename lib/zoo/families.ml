open Syntax

type klass =
  | Datalog
  | Weakly_acyclic
  | Jointly_acyclic
  | Acyclic_grd
  | Linear
  | Guarded
  | Frontier_guarded

let klass_name = function
  | Datalog -> "datalog"
  | Weakly_acyclic -> "weakly-acyclic"
  | Jointly_acyclic -> "jointly-acyclic"
  | Acyclic_grd -> "agrd"
  | Linear -> "linear"
  | Guarded -> "guarded"
  | Frontier_guarded -> "frontier-guarded"

type behaviour = Terminating | Nonterminating

type case = {
  name : string;
  kb : Kb.t;
  classes : klass list;
  behaviour : behaviour;
}

let atom = Atom.make
let cst fmt = Printf.ksprintf Term.const fmt
let v hint = Term.fresh_var ~hint ()
let pred fmt = Printf.ksprintf Fun.id fmt

(* Weakly acyclic ladder: each level spawns one null and hands it to the
   next level.  p0(a) climbs the whole ladder once. *)
let wa_ladder n =
  let rules =
    List.concat
      (List.init n (fun i ->
           let x = v "X" and y = v "Y" in
           let x' = v "X" in
           [
             Rule.make
               ~name:(Printf.sprintf "grow%d" i)
               ~body:[ atom (pred "p%d" i) [ x ] ]
               ~head:[ atom (pred "e%d" i) [ x; y ] ]
               ();
             Rule.make
               ~name:(Printf.sprintf "step%d" i)
               ~body:[ atom (pred "e%d" i) [ v "U"; x' ] ]
               ~head:[ atom (pred "p%d" (i + 1)) [ x' ] ]
               ();
           ]))
  in
  Kb.of_lists ~facts:[ atom "p0" [ cst "a" ] ] ~rules

(* As wa_ladder, but the last step feeds level 0 again: the position
   cycle now runs through a special edge, so weak acyclicity (and
   termination) are gone in one edit. *)
let wa_ladder_mut n =
  let rules =
    List.concat
      (List.init n (fun i ->
           let x = v "X" and y = v "Y" in
           let x' = v "X" in
           [
             Rule.make
               ~name:(Printf.sprintf "grow%d" i)
               ~body:[ atom (pred "p%d" i) [ x ] ]
               ~head:[ atom (pred "e%d" i) [ x; y ] ]
               ();
             Rule.make
               ~name:(Printf.sprintf "step%d" i)
               ~body:[ atom (pred "e%d" i) [ v "U"; x' ] ]
               ~head:[ atom (pred "p%d" (if i = n - 1 then 0 else i + 1)) [ x' ] ]
               ();
           ]))
  in
  Kb.of_lists ~facts:[ atom "p0" [ cst "a" ] ] ~rules

(* Jointly acyclic but not weakly acyclic: u spawns a null into r's
   second position, v cycles r back into p — but only for values seen in
   the unaffected predicate q, which blocks Ω-propagation. *)
let ja_ladder_rules ~mutated n =
  List.concat
    (List.init n (fun i ->
         let x = v "X" and y = v "Y" and z = v "Z" in
         let x' = v "X" and y' = v "Y" in
         let u_head =
           atom (pred "r%d" i) [ y; z ]
           :: (if mutated then [ atom (pred "q%d" i) [ z ] ] else [])
         in
         [
           Rule.make
             ~name:(Printf.sprintf "u%d" i)
             ~body:[ atom (pred "p%d" i) [ x; y ] ]
             ~head:u_head ();
           Rule.make
             ~name:(Printf.sprintf "v%d" i)
             ~body:[ atom (pred "r%d" i) [ x'; y' ]; atom (pred "q%d" i) [ y' ] ]
             ~head:[ atom (pred "p%d" i) [ x'; y' ] ]
             ();
         ]))

let ja_ladder_facts n =
  List.concat
    (List.init n (fun i ->
         [ atom (pred "p%d" i) [ cst "a"; cst "b" ]; atom (pred "q%d" i) [ cst "b" ] ]))

let ja_ladder n =
  Kb.of_lists ~facts:(ja_ladder_facts n) ~rules:(ja_ladder_rules ~mutated:false n)

let ja_ladder_mut n =
  Kb.of_lists ~facts:(ja_ladder_facts n) ~rules:(ja_ladder_rules ~mutated:true n)

(* Linear chain of unary spawns: fixpoint at rank exactly n. *)
let linear_chain n =
  let rules =
    List.init n (fun i ->
        let x = v "X" and y = v "Y" in
        Rule.make
          ~name:(Printf.sprintf "hop%d" i)
          ~body:[ atom (pred "s%d" i) [ x ] ]
          ~head:[ atom (pred "s%d" (i + 1)) [ y ] ]
          ())
  in
  Kb.of_lists ~facts:[ atom "s0" [ cst "a" ] ] ~rules

(* One edit: the first hop gains a second body atom — no longer linear. *)
let linear_chain_mut n =
  let rules =
    List.init n (fun i ->
        let x = v "X" and y = v "Y" in
        if i = 0 then
          Rule.make ~name:"hop0"
            ~body:[ atom "s0" [ x ]; atom "s0" [ v "X'" ] ]
            ~head:[ atom "s1" [ y ] ]
            ()
        else
          Rule.make
            ~name:(Printf.sprintf "hop%d" i)
            ~body:[ atom (pred "s%d" i) [ x ] ]
            ~head:[ atom (pred "s%d" (i + 1)) [ y ] ]
            ())
  in
  Kb.of_lists ~facts:[ atom "s0" [ cst "a" ] ] ~rules

(* Linear, restricted-chase terminating, skolem-chase diverging: the
   second head atom h(Z,Z) satisfies the trigger on h(Y,Z) at birth, so
   the restricted chase stops after one application per seed while the
   skolem chase runs forever.  Only the semantic probes certify this
   family. *)
let linear_twist_facts n =
  List.init n (fun i -> atom "h" [ cst "a%d" i; cst "a%d" (i + 1) ])

let linear_twist n =
  let x = v "X" and y = v "Y" and z = v "Z" in
  Kb.of_lists
    ~facts:(linear_twist_facts n)
    ~rules:
      [
        Rule.make ~name:"twist"
          ~body:[ atom "h" [ x; y ] ]
          ~head:[ atom "h" [ y; z ]; atom "h" [ z; z ] ]
          ();
      ]

(* One edit: drop the self-satisfying atom — the family becomes the
   paper's diverging bts-not-fes loop. *)
let linear_twist_mut n =
  let x = v "X" and y = v "Y" and z = v "Z" in
  Kb.of_lists
    ~facts:(linear_twist_facts n)
    ~rules:
      [
        Rule.make ~name:"twist"
          ~body:[ atom "h" [ x; y ] ]
          ~head:[ atom "h" [ y; z ] ]
          ();
      ]

(* Guarded but not linear (two body atoms, r(X,Y) guards both
   variables); jointly acyclic because b blocks Ω-propagation. *)
let guarded_pair_facts n =
  List.concat
    (List.init n (fun i ->
         [
           atom "a" [ cst "c%d" i; cst "c%d" (i + 1) ];
           atom "b" [ cst "c%d" i; cst "c%d" (i + 1) ];
         ]))

let guarded_pair n =
  let x = v "X" and y = v "Y" and z = v "Z" in
  Kb.of_lists
    ~facts:(guarded_pair_facts n)
    ~rules:
      [
        Rule.make ~name:"pair"
          ~body:[ atom "a" [ x; y ]; atom "b" [ x; y ] ]
          ~head:[ atom "a" [ y; z ] ]
          ();
      ]

(* One edit: unbind the second guard position — the rule keeps its
   frontier guard a(X,Y) but no atom covers {X, Y, W} any more. *)
let guarded_pair_mut n =
  let x = v "X" and y = v "Y" and z = v "Z" and w = v "W" in
  Kb.of_lists
    ~facts:(guarded_pair_facts n)
    ~rules:
      [
        Rule.make ~name:"pair"
          ~body:[ atom "a" [ x; y ]; atom "b" [ x; w ] ]
          ~head:[ atom "a" [ y; z ] ]
          ();
      ]

(* No acyclicity class holds (walk and brake depend on each other and
   walk is existential), but the skolem chase on the critical instance
   reaches a fixpoint: brake atoms are never created, so the walk stops
   one step past the braked region (Marnette's criterion certifies
   universal termination). *)
let braked_walk_rules ~mutated =
  let x = v "X" and y = v "Y" in
  let x' = v "X" and y' = v "Y" in
  [
    Rule.make ~name:"walk"
      ~body:[ atom "s" [ x ] ]
      ~head:[ atom "r" [ x; y ] ]
      ();
    Rule.make ~name:"brake"
      ~body:
        (atom "r" [ x'; y' ] :: (if mutated then [] else [ atom "brake" [ x' ] ]))
      ~head:[ atom "s" [ y' ] ]
      ();
  ]

let braked_walk_facts n =
  List.concat
    (List.init n (fun i -> [ atom "s" [ cst "a%d" i ]; atom "brake" [ cst "a%d" i ] ]))

let braked_walk n =
  Kb.of_lists ~facts:(braked_walk_facts n) ~rules:(braked_walk_rules ~mutated:false)

(* One edit: lose the brake — every created null walks again, forever. *)
let braked_walk_mut n =
  Kb.of_lists ~facts:(braked_walk_facts n) ~rules:(braked_walk_rules ~mutated:true)

(* Frontier-guarded but not guarded: the frontier {Z} is covered by
   g(Y,Z) but no body atom covers {X,Y,Z}.  Diverges: every braid
   extends the walk by a fresh tail. *)
(* at least two chained edges: a single edge gives the two-atom body no
   match at all and the "diverging" family would trivially terminate *)
let fg_braid_facts n =
  List.init (max 2 n) (fun i -> atom "g" [ cst "a%d" i; cst "a%d" (i + 1) ])

let fg_braid n =
  let x = v "X" and y = v "Y" and z = v "Z" and w = v "W" in
  Kb.of_lists
    ~facts:(fg_braid_facts n)
    ~rules:
      [
        Rule.make ~name:"braid"
          ~body:[ atom "g" [ x; y ]; atom "g" [ y; z ] ]
          ~head:[ atom "g" [ z; w ] ]
          ();
      ]

(* One edit: the head now needs both X and Z — the frontier {X, Z} has
   no covering body atom, frontier-guardedness is gone. *)
let fg_braid_mut n =
  let x = v "X" and y = v "Y" and z = v "Z" and w = v "W" in
  Kb.of_lists
    ~facts:(fg_braid_facts n)
    ~rules:
      [
        Rule.make ~name:"braid"
          ~body:[ atom "g" [ x; y ]; atom "g" [ y; z ] ]
          ~head:[ atom "g" [ x; w ]; atom "g" [ z; w ] ]
          ();
      ]

(* The paper's bts-not-fes loop, n disconnected seeds: n tails diverge
   under every chase variant. *)
let nonterm_loop n =
  let x = v "X" and y = v "Y" and z = v "Z" in
  Kb.of_lists
    ~facts:(List.init n (fun i -> atom "r" [ cst "a%d" i; cst "b%d" i ]))
    ~rules:
      [
        Rule.make ~name:"grow"
          ~body:[ atom "r" [ x; y ] ]
          ~head:[ atom "r" [ y; z ] ]
          ();
      ]

(* Existential-free transitive closure over an n-chain. *)
let datalog_clique n =
  let x = v "X" and y = v "Y" and z = v "Z" in
  Kb.of_lists
    ~facts:(List.init n (fun i -> atom "e" [ cst "c%d" i; cst "c%d" (i + 1) ]))
    ~rules:
      [
        Rule.make ~name:"trans"
          ~body:[ atom "e" [ x; y ]; atom "e" [ y; z ] ]
          ~head:[ atom "e" [ x; z ] ]
          ();
      ]

(* One edit: the head turns existential — no longer datalog (but still
   weakly acyclic: the fresh W never flows back into a body). *)
let datalog_clique_mut n =
  let x = v "X" and y = v "Y" and z = v "Z" and w = v "W" in
  Kb.of_lists
    ~facts:(List.init n (fun i -> atom "e" [ cst "c%d" i; cst "c%d" (i + 1) ]))
    ~rules:
      [
        Rule.make ~name:"trans"
          ~body:[ atom "e" [ x; y ]; atom "e" [ y; z ] ]
          ~head:[ atom "e" [ x; w ] ]
          ();
      ]

let scale_of ?(scale = 3) () = max 1 scale

let families ?scale () =
  let n = scale_of ?scale () in
  let case name kb classes behaviour =
    { name = Printf.sprintf "%s-%d" name n; kb; classes; behaviour }
  in
  [
    case "wa-ladder" (wa_ladder n)
      [ Weakly_acyclic; Jointly_acyclic; Acyclic_grd; Linear; Guarded; Frontier_guarded ]
      Terminating;
    case "ja-ladder" (ja_ladder n) [ Jointly_acyclic; Guarded; Frontier_guarded ]
      Terminating;
    case "linear-chain" (linear_chain n)
      [ Weakly_acyclic; Jointly_acyclic; Acyclic_grd; Linear; Guarded; Frontier_guarded ]
      Terminating;
    case "linear-twist" (linear_twist n) [ Linear; Guarded; Frontier_guarded ]
      Terminating;
    case "guarded-pair" (guarded_pair n) [ Jointly_acyclic; Guarded; Frontier_guarded ]
      Terminating;
    case "braked-walk" (braked_walk n) [ Guarded; Frontier_guarded ] Terminating;
    case "fg-braid" (fg_braid n) [ Frontier_guarded ] Nonterminating;
    case "nonterm-loop" (nonterm_loop n) [ Linear; Guarded; Frontier_guarded ]
      Nonterminating;
    case "datalog-clique" (datalog_clique n)
      [ Datalog; Weakly_acyclic; Jointly_acyclic ]
      Terminating;
  ]

type broken = Klass of klass | Termination

type mutant = { parent : case; case : case; broken : broken }

let mutants ?scale () =
  let n = scale_of ?scale () in
  let parents = families ~scale:n () in
  let parent name = List.find (fun c -> c.name = Printf.sprintf "%s-%d" name n) parents in
  let mut name kb broken behaviour =
    let p = parent name in
    {
      parent = p;
      case = { name = p.name ^ "-mut"; kb; classes = []; behaviour };
      broken;
    }
  in
  [
    mut "wa-ladder" (wa_ladder_mut n) (Klass Weakly_acyclic) Nonterminating;
    mut "ja-ladder" (ja_ladder_mut n) (Klass Jointly_acyclic) Nonterminating;
    mut "linear-chain" (linear_chain_mut n) (Klass Linear) Terminating;
    mut "linear-twist" (linear_twist_mut n) Termination Nonterminating;
    mut "guarded-pair" (guarded_pair_mut n) (Klass Guarded) Terminating;
    mut "braked-walk" (braked_walk_mut n) Termination Nonterminating;
    mut "fg-braid" (fg_braid_mut n) (Klass Frontier_guarded) Nonterminating;
    mut "datalog-clique" (datalog_clique_mut n) (Klass Datalog) Terminating;
  ]

let named ?scale () =
  let fams = List.map (fun c -> (c.name, c.kb)) (families ?scale ()) in
  let muts = List.map (fun m -> (m.case.name, m.case.kb)) (mutants ?scale ()) in
  fams @ muts
