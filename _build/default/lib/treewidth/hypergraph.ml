open Syntax
module TS = Set.Make (Term)

type t = { edges : TS.t list; vertices : TS.t }

let of_atomset a =
  let edges =
    Atomset.fold (fun at acc -> TS.of_list (Atom.term_set at) :: acc) a []
    |> List.sort_uniq TS.compare
  in
  let vertices = List.fold_left TS.union TS.empty edges in
  { edges; vertices }

let vertex_count h = TS.cardinal h.vertices

let edge_count h = List.length h.edges

let cover_number h terms =
  let target = TS.of_list terms in
  if
    not
      (TS.for_all
         (fun t -> List.exists (fun e -> TS.mem t e) h.edges)
         target)
  then invalid_arg "Hypergraph.cover_number: uncoverable term";
  let best = ref max_int in
  let rec go uncovered used =
    if used >= !best then ()
    else if TS.is_empty uncovered then best := used
    else begin
      (* branch on one uncovered vertex: some chosen edge must contain it *)
      let v = TS.min_elt uncovered in
      List.iter
        (fun e ->
          if TS.mem v e then go (TS.diff uncovered e) (used + 1))
        h.edges
    end
  in
  go target 0;
  !best

let ghw_of_decomposition h (d : Decomposition.t) =
  Array.fold_left
    (fun acc bag -> max acc (cover_number h bag))
    0 d.Decomposition.bags

let ghw_upper a =
  if Atomset.is_empty a then 0
  else begin
    let h = of_atomset a in
    let p = Primal.of_atomset a in
    let decomposition_of order = Elimination.decomposition_of_order p order in
    let candidates =
      [
        decomposition_of (Elimination.min_fill_order p.Primal.graph);
        decomposition_of (Elimination.min_degree_order p.Primal.graph);
      ]
    in
    List.fold_left
      (fun acc d -> min acc (ghw_of_decomposition h d))
      max_int candidates
  end

let is_acyclic_evidence a = ghw_upper a = 1
