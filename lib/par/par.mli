(** Deterministic domain-pool parallelism (DESIGN.md §10, §14).

    A process-wide pool of OCaml 5 domains plus fan-out combinators whose
    results are {e independent of the schedule}: [map]/[map_reduce] merge
    in input order, [find_first_map] returns the first-by-index success
    (exactly what the sequential [List.find_map] returns), and task
    [i] of a batch always runs on slot [i mod jobs] (static round-robin,
    the caller participating as slot 0) so even the per-domain metric
    split of {!Obs.Metrics} is reproducible.

    Workers are fed through persistent per-domain worklists: submitting
    a fan-out costs one plain store and one atomic store per active
    worker (plus a condition signal only for workers that are parked),
    not a process mutex and condition broadcasts — see DESIGN.md §14
    for the protocol and the memory-model argument.

    {!Batch} is the throughput layer on the same pool: N independent
    tasks (whole chases, entailment queries) claimed dynamically, each
    under per-task isolation, with results in submission order.

    With [jobs = 1] (the default) no pool exists and every combinator is
    {e definitionally} its sequential counterpart — no extra allocation,
    no trace events, no counters — so single-job runs are byte-identical
    to pre-pool builds.

    Sizing: [CORECHASE_JOBS] in the environment at startup, or
    {!set_jobs} / the CLI's [--jobs N] at runtime.

    Reentrancy: a combinator called from inside a running batch (from a
    worker, or from the caller's own slice) degrades to the sequential
    path rather than deadlocking on the single batch slot. *)

val max_jobs : int
(** Hard cap on the pool width (64 workers + the caller). *)

val jobs : unit -> int
(** The requested parallelism width ([1] by default).  The pool itself
    runs at [min (jobs ()) cores] unless forced ({!oversubscribed}). *)

val set_jobs : int -> unit
(** Request a parallelism width: tears down a running pool of the wrong
    width (joining its domains) and spawns the new one; [set_jobs 1]
    just tears down.  A no-op when the width is unchanged.  Values
    above {!max_jobs} are clamped; the pool is additionally clamped to
    the core count unless {!force_parallel} is on — see
    {!oversubscribed}.  @raise Invalid_argument when [n < 1]. *)

val with_jobs : int -> (unit -> 'a) -> 'a
(** Run the thunk under [set_jobs n], restoring the previous width
    afterwards (also on exceptions).  Test harness convenience. *)

val sequential : unit -> bool
(** [true] when a combinator called here and now would run its
    sequential path: no pool (including a clamped-to-1 request, see
    {!oversubscribed}), a worker domain, or a batch in flight. *)

val oversubscribed : unit -> bool
(** [true] when the requested width exceeds the machine
    ([jobs () > Domain.recommended_domain_count ()]) and the clamp is
    active: the pool runs at the core count instead — time-shared
    surplus domains can never beat a narrower pool, each fan-out would
    still pay their wake-ups, and merely keeping them alive taxes every
    minor collection with stop-the-world synchronisation.  Results are
    pool-width-independent (the jobs=4 ≡ jobs=1 differential law), so
    the clamp changes no output; on a 1-core machine [--jobs 4] runs
    sequentially with no pool at all. *)

val force_parallel : bool -> unit
(** Lift the oversubscription clamp: with [force_parallel true] (or
    [CORECHASE_FORCE_PAR=1] in the environment at startup) the pool
    runs at the full requested width.  The differential test layer uses
    this so jobs=4 ≡ jobs=1 pins — and the per-slot metric splits the
    cram layer pins, which are only machine-independent at full width —
    exercise real cross-domain execution even on a 1-core machine.
    Resizes the pool if needed; do not call mid-batch. *)

(** {1 Deterministic fan-out combinators}

    [site] names the fan-out point in [Par_fanout] trace events and is
    free-form ("trigger.satcheck", "tw.branch", …).  Exceptions raised
    by tasks are re-raised in the caller — the lowest-index failing
    task wins, again matching sequential order. *)

val map : ?site:string -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel [List.map]. *)

val iter : ?site:string -> ('a -> unit) -> 'a list -> unit
(** Parallel [List.iter]; all tasks complete before it returns. *)

val find_first_map : ?site:string -> ('a -> 'b option) -> 'a list -> 'b option
(** Parallel [List.find_map] with sequential-first-success semantics:
    items are evaluated in waves of [2 × jobs]; within each wave all
    items run, and the lowest-index [Some] wins.  Later waves are not
    started once a wave succeeds, so early successes still prune —
    at the price of (at most one wave of) extra evaluations relative
    to the sequential early exit. *)

val map_reduce :
  ?site:string ->
  map:('a -> 'b) ->
  reduce:('c -> 'b -> 'c) ->
  init:'c ->
  'a list ->
  'c
(** [map] in parallel, then fold the results {e in input order} on the
    caller: [map_reduce ~map ~reduce ~init [x1; …; xn]] equals
    [reduce (… (reduce init (map x1)) …) (map xn)] exactly. *)

(** {1 The pool itself}

    Exposed for callers that want to drive raw batches; the combinators
    above are the intended interface. *)
module Pool : sig
  type t

  val create : jobs:int -> t
  (** Spawn [jobs - 1] worker domains (slot [k] pinned via
      [Obs.Metrics.set_slot k]).  @raise Invalid_argument when
      [jobs < 2]. *)

  val jobs : t -> int

  val run : t -> (unit -> unit) array -> unit
  (** Execute one batch: chunk [i] runs on slot [i mod jobs], the caller
      executing slot 0's chunks itself; returns when every chunk has.
      Only the workers owning a nonempty slice are woken.  Between a
      slot's chunks the ambient cancellation token is polled; a raise —
      from a chunk or from the poll — is recorded (first one wins), the
      barrier still completes, and the exception is re-raised here, so
      a failure never leaves the batch protocol out of sync.  The
      combinators wrap payloads so their chunks only raise via the
      poll.  Batches must not be nested. *)

  val shutdown : t -> unit
  (** Stop and join the workers.  The pool must not be used after. *)
end

(** {1 Batched throughput}

    The realistic server load is many {e independent} jobs, not one wide
    fan-out.  [Batch] runs N tasks across the pool with {e dynamic}
    claiming — whole chases have wildly uneven durations, and static
    striding would idle domains behind the slowest stripe — which is
    sound because each task runs under per-task isolation (DESIGN.md
    §14): a private fresh-variable counter starting at 0
    ({!Syntax.Term.with_local_counter}), a private ambient-token scope
    seeded from the submission's token ({!Resilience.with_task_scope}),
    registered cache-reset hooks (the hom memo registers one), and a
    muted trace ({!Obs.Trace.with_muted}).  Consequently the result
    array is byte-identical to a sequential loop over the tasks, in
    submission order, at any pool width.

    Instruments (registered on first use): [par.batch.runs],
    [par.batch.tasks] counters; [par.steal] / [par.queue_depth] record
    scheduling facts (claims off a task's home stripe, tasks left at
    claim time) and are diagnostics, not determinism-pinned values.
    With tracing on, one {!Obs.Trace.event.Batch_task} summary per task
    is emitted after the barrier, in submission order. *)
module Batch : sig
  val run :
    ?site:string ->
    ?tokens:Resilience.Token.t option array ->
    (unit -> 'a) array ->
    ('a, exn) result array
  (** [run tasks] executes every task and returns per-task outcomes in
      submission order.  A task's exception is its own [Error] — sibling
      tasks are unaffected.  Nested calls (from inside a task, or from a
      fan-out) degrade to the isolated sequential loop, as does
      [jobs = 1]; the observable results are identical by construction.
      Fault injection: one [par]-site hit opportunity per submitted
      task, decided on the caller in submission order, so a [par:k:kind]
      spec disables the same task at every width.

      [tokens] (same length as [tasks]) seeds task [i]'s private token
      scope with [tokens.(i)] instead of the submission's ambient token
      ([None] entries keep the ambient fallback) — the server uses this
      to run one batch of entailment readers where every task answers a
      different connection, each cancellable on its own (DESIGN.md §15).
      @raise Invalid_argument on a length mismatch. *)

  val map : ?site:string -> ('a -> 'b) -> 'a list -> ('b, exn) result list
  (** List convenience over {!run}. *)

  val add_reset_hook : (unit -> unit) -> unit
  (** Register a hook run on the executing domain at the start of every
      task, before its body: reset ambient per-domain caches so a task
      never observes a sibling's (or a previous tenant's) state.
      Hooks must be idempotent, cheap, and domain-local. *)
end
