lib/chase/datalog.ml: Atomset Homo List Rule Subst Syntax
