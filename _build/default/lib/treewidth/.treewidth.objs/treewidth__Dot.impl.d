lib/treewidth/dot.ml: Array Atom Atomset Buffer Decomposition Fmt Hashtbl List Printf String Syntax Term
