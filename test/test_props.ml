(* Property-based tests over a small hand-rolled framework: explicit
   generators, greedy shrinking and a printable counter-example — no
   dependency on qcheck's combinators, so every law's search space and
   shrink order is spelled out here.

   Laws (each over 200+ random cases):
     - substitution composition is associative (extensionally);
     - Dlgp print ∘ parse is a fixpoint on printer output, and parsing
       preserves the facts up to isomorphism;
     - the core is idempotent: core(core(F)) = core(F), is_core holds,
       and the core stays hom-equivalent to F;
     - the restricted chase on datalog KBs is invariant under renaming
       the rules apart (unique least fixpoint);
     - delta-scoped core maintenance agrees with the exhaustive fold
       search: the core chase run in Audit scoping (which raises on any
       non-isomorphic pair of cores) never raises on random KBs;
     - trace events survive the JSONL round trip (Obs.Trace.of_json_line
       ∘ to_json = Some);
     - flat interned codes (DESIGN.md §12): decode ∘ encode = id up to
       Atom.equal, flat equal/compare/hash agree with the boxed ones,
       flat substitution application agrees with Subst.apply_atom, and
       the flat solver — and through it every chase engine — is
       observationally identical to the boxed reference;
     - the analyzer (DESIGN.md §13) respects the class-implication
       lattice on random KBs, never certifies termination the
       restricted chase does not deliver, and rejects every near-miss
       zoo mutant from exactly the class its one-edit mutation
       targets;
     - the serve wire codec (DESIGN.md §15): frame decode ∘ encode =
       id on arbitrary (binary) frames, every strict prefix of a
       well-formed frame is Truncated, oversized length prefixes are
       rejected with the offending length, decode is total on random
       bytes, and the request grammar's parse ∘ print = id;
     - the WAL codec (DESIGN.md §16): record decode ∘ encode = id,
       every strict prefix of a record or frame is an error (torn, for
       frames), single-byte flips never pass the CRC, both decoders are
       total on random bytes, and the PR-5 text checkpoint reader is
       total on byte soup, prefixes and corruptions of genuine
       checkpoints. *)

open Syntax

(* ------------------------------------------------------------------ *)
(* Framework *)

type 'a arbitrary = {
  gen : Random.State.t -> 'a;
  shrink : 'a -> 'a list;
  print : 'a -> string;
}

let check ?(count = 250) name arb prop =
  Alcotest.test_case name `Quick (fun () ->
      (* seeded per law: failures reproduce deterministically *)
      let rng = Random.State.make [| 0x5eed; Hashtbl.hash name |] in
      let holds x = try prop x with _ -> false in
      for case = 1 to count do
        let x0 = arb.gen rng in
        if not (holds x0) then begin
          (* greedy first-failing-candidate descent, bounded fuel *)
          let rec minimise fuel x =
            if fuel <= 0 then x
            else
              match List.find_opt (fun y -> not (holds y)) (arb.shrink x) with
              | Some y -> minimise (fuel - 1) y
              | None -> x
          in
          let x = minimise 500 x0 in
          Alcotest.failf "%s: falsified at case %d/%d@.shrunk counter-example: %s"
            name case count (arb.print x)
        end
      done)

let int_in rng lo hi = lo + Random.State.int rng (hi - lo + 1)

let pick rng l = List.nth l (Random.State.int rng (List.length l))

(* remove the i-th element, for one-smaller shrink candidates *)
let without_each l =
  List.mapi (fun i _ -> List.filteri (fun j _ -> j <> i) l) l

(* ------------------------------------------------------------------ *)
(* Law 1: substitution composition associativity *)

let var_pool = List.init 8 (fun i -> Term.var_of_id ~hint:"P" (920_000 + i))

let const_pool = List.init 4 (fun i -> Term.const (Printf.sprintf "pc%d" i))

let term_pool = var_pool @ const_pool

let gen_bindings rng =
  List.init (int_in rng 0 5) (fun _ -> (pick rng var_pool, pick rng term_pool))

let subst_of bindings =
  List.fold_left (fun s (x, t) -> Subst.add x t s) Subst.empty bindings

let pp_bindings b = Fmt.str "%a" Subst.pp_debug (subst_of b)

let subst_triple : (_ * _ * _) arbitrary =
  {
    gen = (fun rng -> (gen_bindings rng, gen_bindings rng, gen_bindings rng));
    shrink =
      (fun (b1, b2, b3) ->
        List.map (fun b1' -> (b1', b2, b3)) (without_each b1)
        @ List.map (fun b2' -> (b1, b2', b3)) (without_each b2)
        @ List.map (fun b3' -> (b1, b2, b3')) (without_each b3));
    print =
      (fun (b1, b2, b3) ->
        Fmt.str "σ1=%s σ2=%s σ3=%s" (pp_bindings b1) (pp_bindings b2)
          (pp_bindings b3));
  }

let compose_associative (b1, b2, b3) =
  let s1 = subst_of b1 and s2 = subst_of b2 and s3 = subst_of b3 in
  let lhs = Subst.compose s3 (Subst.compose s2 s1) in
  let rhs = Subst.compose (Subst.compose s3 s2) s1 in
  (* extensional equality: σ⁺ agrees on every pool term (and hence on
     every term, both sides being the identity outside the pool vars) *)
  List.for_all
    (fun t -> Term.equal (Subst.apply_term lhs t) (Subst.apply_term rhs t))
    term_pool

(* ------------------------------------------------------------------ *)
(* Law 2: Dlgp print/parse round trip *)

type dlgp_case = { seed : int; n_facts : int; n_rules : int }

let dlgp_case : dlgp_case arbitrary =
  {
    gen =
      (fun rng ->
        {
          seed = Random.State.int rng 1_000_000;
          n_facts = int_in rng 1 8;
          n_rules = int_in rng 0 5;
        });
    shrink =
      (fun c ->
        (if c.n_rules > 0 then [ { c with n_rules = c.n_rules - 1 } ] else [])
        @ (if c.n_facts > 1 then [ { c with n_facts = c.n_facts - 1 } ] else [])
        @ if c.seed > 0 then [ { c with seed = c.seed / 2 } ] else []);
    print =
      (fun c ->
        Fmt.str "seed=%d n_facts=%d n_rules=%d" c.seed c.n_facts c.n_rules);
  }

let doc_of_kb kb =
  {
    Dlgp.facts = Kb.facts kb;
    rules = Kb.rules kb;
    egds = Kb.egds kb;
    queries = [];
    constraints = [];
  }

let dlgp_roundtrip c =
  let kb =
    Zoo.Randomkb.generate ~seed:c.seed
      { Zoo.Randomkb.default with n_facts = c.n_facts; n_rules = c.n_rules }
  in
  let s1 = Fmt.str "%a" Dlgp.print_document (doc_of_kb kb) in
  match Dlgp.parse_string s1 with
  | Error _ -> false
  | Ok doc2 -> (
      let s2 = Fmt.str "%a" Dlgp.print_document doc2 in
      (* printing is a right inverse of parsing: one more trip is the
         identity on the text, and the facts survive up to isomorphism *)
      match Dlgp.parse_string s2 with
      | Error _ -> false
      | Ok doc3 ->
          String.equal s2 (Fmt.str "%a" Dlgp.print_document doc3)
          && Homo.Morphism.isomorphic (Kb.facts kb) doc2.Dlgp.facts
          && List.length doc2.Dlgp.rules = List.length (Kb.rules kb))

(* ------------------------------------------------------------------ *)
(* Law 3: core idempotence *)

let core_vars = List.init 6 (fun i -> Term.var_of_id ~hint:"C" (921_000 + i))

let core_terms = core_vars @ List.init 3 (fun i -> Term.const (Printf.sprintf "kc%d" i))

let gen_atom rng =
  match int_in rng 0 3 with
  | 0 -> Atom.make "u" [ pick rng core_terms ]
  | 1 -> Atom.make "p" [ pick rng core_terms; pick rng core_terms ]
  | 2 -> Atom.make "q" [ pick rng core_terms; pick rng core_terms ]
  | _ -> Atom.make "r" [ pick rng core_terms; pick rng core_terms ]

let atom_list : Atom.t list arbitrary =
  {
    gen = (fun rng -> List.init (int_in rng 1 10) (fun _ -> gen_atom rng));
    shrink = without_each;
    print =
      (fun atoms ->
        Fmt.str "%a" Atomset.pp_verbose (Atomset.of_list atoms));
  }

let core_idempotent atoms =
  let a = Atomset.of_list atoms in
  let c = Homo.Core.of_atomset a in
  Homo.Core.is_core c
  && Atomset.equal (Homo.Core.of_atomset c) c
  && Homo.Morphism.hom_equivalent a c

(* ------------------------------------------------------------------ *)
(* Law 4: restricted-chase invariance under renaming (datalog) *)

let seed_arb : int arbitrary =
  {
    gen = (fun rng -> Random.State.int rng 1_000_000);
    shrink = (fun s -> if s > 0 then [ s / 2; s - 1 ] else []);
    print = string_of_int;
  }

let chase_renaming_invariant seed =
  let kb = Zoo.Randomkb.generate ~seed Zoo.Randomkb.datalog in
  let budget = { Chase.Variants.max_steps = 400; max_atoms = 4_000 } in
  let r1 = Chase.run ~budget Chase.Restricted kb in
  let kb' =
    Kb.make ~facts:(Kb.facts kb)
      ~rules:(List.map Rule.rename_apart (Kb.rules kb))
  in
  let r2 = Chase.run ~budget Chase.Restricted kb' in
  if not (r1.Chase.terminated && r2.Chase.terminated) then
    (* budget runs carry no invariance guarantee; datalog KBs of this
       size terminate, so this branch stays unexercised in practice *)
    true
  else
    (* datalog: the restricted chase computes the unique least fixpoint,
       so renaming the rules apart cannot change the final instance *)
    Atomset.equal r1.Chase.final r2.Chase.final

(* ------------------------------------------------------------------ *)
(* Law 5: delta-scoped core maintenance never diverges from the full
   search.  Audit scoping re-folds exhaustively alongside every scoped
   fold and raises [Failure] when the two cores are not isomorphic, so
   "the audited core chase completes without raising" is exactly the
   scoped ≡ full law (DESIGN.md §9). *)

type scoped_case = { cseed : int; csteps : int }

let scoped_case : scoped_case arbitrary =
  {
    gen =
      (fun rng ->
        { cseed = Random.State.int rng 1_000_000; csteps = int_in rng 4 14 });
    shrink =
      (fun c ->
        (if c.csteps > 1 then [ { c with csteps = c.csteps - 1 } ] else [])
        @ if c.cseed > 0 then [ { c with cseed = c.cseed / 2 } ] else []);
    print = (fun c -> Fmt.str "seed=%d steps=%d" c.cseed c.csteps);
  }

let scoped_core_agrees c =
  let kb = Zoo.Randomkb.generate ~seed:c.cseed Zoo.Randomkb.default in
  let budget = { Chase.Variants.max_steps = c.csteps; max_atoms = 2_000 } in
  let saved = !Homo.Core.scoping in
  Homo.Core.scoping := Homo.Core.Audit;
  Fun.protect
    ~finally:(fun () -> Homo.Core.scoping := saved)
    (fun () ->
      ignore (Chase.Variants.core ~budget kb);
      true)

(* ------------------------------------------------------------------ *)
(* Law 6: trace events survive the JSONL round trip *)

let strings =
  [ ""; "core"; "Rh1"; "a b"; "quo\"te"; "back\\slash"; "uni_x"; "r:1" ]

let gen_small rng = int_in rng 0 50

let gen_event rng : Obs.Trace.event =
  match int_in rng 0 16 with
  | 0 ->
      Round_start
        { engine = pick rng strings; round = gen_small rng; size = gen_small rng }
  | 1 ->
      Trigger_found
        { engine = pick rng strings; found = gen_small rng; size = gen_small rng }
  | 2 ->
      Trigger_applied
        {
          engine = pick rng strings;
          step = gen_small rng;
          rule = pick rng strings;
          produced = gen_small rng;
          size = gen_small rng;
        }
  | 3 ->
      Retract
        {
          engine = pick rng strings;
          step = gen_small rng;
          removed = gen_small rng;
          size = gen_small rng;
        }
  | 4 ->
      Egd_merge
        { engine = pick rng strings; step = gen_small rng; size = gen_small rng }
  | 5 ->
      Hom_backtrack
        {
          backtracks = gen_small rng;
          src_atoms = gen_small rng;
          tgt_atoms = gen_small rng;
        }
  | 6 ->
      Core_scoped_fold
        {
          candidates = gen_small rng;
          folded = Random.State.bool rng;
          size = gen_small rng;
        }
  | 7 ->
      Tw_decomposed
        {
          vertices = gen_small rng;
          width = gen_small rng - 1;
          exact = Random.State.bool rng;
        }
  | 8 ->
      Par_fanout
        {
          site = pick rng strings;
          tasks = gen_small rng;
          jobs = 1 + int_in rng 0 7;
        }
  | 9 ->
      Batch_task
        {
          site = pick rng strings;
          index = gen_small rng;
          slot = int_in rng 0 7;
          ms = gen_small rng;
        }
  | 10 -> Deadline_hit { engine = pick rng strings; step = gen_small rng }
  | 11 ->
      Session_event
        {
          action = pick rng strings;
          session = pick rng strings;
          generation = gen_small rng;
        }
  | 12 -> Conn_event { action = pick rng strings; conn = gen_small rng - 1 }
  | 13 -> Wal_rotate { segment = pick rng strings; lsn = gen_small rng }
  | 14 ->
      Snapshot_written
        {
          path = pick rng strings;
          lsn = gen_small rng;
          records = gen_small rng;
        }
  | 15 ->
      Recovery_replayed
        {
          dir = pick rng strings;
          records = gen_small rng;
          torn = Random.State.bool rng;
        }
  | _ ->
      Checkpoint_written
        { engine = pick rng strings; step = gen_small rng; path = pick rng strings }

let shrink_event (e : Obs.Trace.event) : Obs.Trace.event list =
  (* shrink every integer field toward 0 and every string to "" *)
  let half n = if n = 0 then [] else [ n / 2 ] in
  let str s = if s = "" then [] else [ "" ] in
  match e with
  | Round_start f ->
      List.map (fun engine -> Obs.Trace.Round_start { f with engine }) (str f.engine)
      @ List.map (fun round -> Obs.Trace.Round_start { f with round }) (half f.round)
      @ List.map (fun size -> Obs.Trace.Round_start { f with size }) (half f.size)
  | Trigger_found f ->
      List.map (fun engine -> Obs.Trace.Trigger_found { f with engine }) (str f.engine)
      @ List.map (fun found -> Obs.Trace.Trigger_found { f with found }) (half f.found)
  | Trigger_applied f ->
      List.map (fun engine -> Obs.Trace.Trigger_applied { f with engine }) (str f.engine)
      @ List.map (fun rule -> Obs.Trace.Trigger_applied { f with rule }) (str f.rule)
      @ List.map (fun step -> Obs.Trace.Trigger_applied { f with step }) (half f.step)
  | Retract f ->
      List.map (fun engine -> Obs.Trace.Retract { f with engine }) (str f.engine)
      @ List.map (fun removed -> Obs.Trace.Retract { f with removed }) (half f.removed)
  | Egd_merge f ->
      List.map (fun engine -> Obs.Trace.Egd_merge { f with engine }) (str f.engine)
      @ List.map (fun step -> Obs.Trace.Egd_merge { f with step }) (half f.step)
  | Hom_backtrack f ->
      List.map (fun backtracks -> Obs.Trace.Hom_backtrack { f with backtracks })
        (half f.backtracks)
  | Core_scoped_fold f ->
      List.map (fun candidates -> Obs.Trace.Core_scoped_fold { f with candidates })
        (half f.candidates)
      @ List.map (fun size -> Obs.Trace.Core_scoped_fold { f with size }) (half f.size)
  | Tw_decomposed f ->
      List.map (fun vertices -> Obs.Trace.Tw_decomposed { f with vertices })
        (half f.vertices)
  | Par_fanout f ->
      List.map (fun site -> Obs.Trace.Par_fanout { f with site }) (str f.site)
      @ List.map (fun tasks -> Obs.Trace.Par_fanout { f with tasks })
          (half f.tasks)
  | Batch_task f ->
      List.map (fun site -> Obs.Trace.Batch_task { f with site }) (str f.site)
      @ List.map (fun index -> Obs.Trace.Batch_task { f with index })
          (half f.index)
      @ List.map (fun ms -> Obs.Trace.Batch_task { f with ms }) (half f.ms)
  | Deadline_hit f ->
      List.map (fun engine -> Obs.Trace.Deadline_hit { f with engine }) (str f.engine)
      @ List.map (fun step -> Obs.Trace.Deadline_hit { f with step }) (half f.step)
  | Checkpoint_written f ->
      List.map
        (fun engine -> Obs.Trace.Checkpoint_written { f with engine })
        (str f.engine)
      @ List.map (fun path -> Obs.Trace.Checkpoint_written { f with path })
          (str f.path)
      @ List.map (fun step -> Obs.Trace.Checkpoint_written { f with step })
          (half f.step)
  | Session_event f ->
      List.map (fun action -> Obs.Trace.Session_event { f with action }) (str f.action)
      @ List.map (fun session -> Obs.Trace.Session_event { f with session })
          (str f.session)
      @ List.map (fun generation -> Obs.Trace.Session_event { f with generation })
          (half f.generation)
  | Conn_event f ->
      List.map (fun action -> Obs.Trace.Conn_event { f with action }) (str f.action)
      @ List.map (fun conn -> Obs.Trace.Conn_event { f with conn }) (half f.conn)
  | Wal_rotate f ->
      List.map (fun segment -> Obs.Trace.Wal_rotate { f with segment })
        (str f.segment)
      @ List.map (fun lsn -> Obs.Trace.Wal_rotate { f with lsn }) (half f.lsn)
  | Snapshot_written f ->
      List.map (fun path -> Obs.Trace.Snapshot_written { f with path })
        (str f.path)
      @ List.map (fun lsn -> Obs.Trace.Snapshot_written { f with lsn })
          (half f.lsn)
      @ List.map (fun records -> Obs.Trace.Snapshot_written { f with records })
          (half f.records)
  | Recovery_replayed f ->
      List.map (fun dir -> Obs.Trace.Recovery_replayed { f with dir })
        (str f.dir)
      @ List.map (fun records -> Obs.Trace.Recovery_replayed { f with records })
          (half f.records)

let event_arb : Obs.Trace.event arbitrary =
  {
    gen = gen_event;
    shrink = shrink_event;
    print = (fun e -> Obs.Trace.to_json e);
  }

let json_roundtrip e =
  match Obs.Trace.of_json_line (Obs.Trace.to_json e) with
  | Some e' -> e' = e
  | None -> false

(* ------------------------------------------------------------------ *)
(* Law 7: parallel exact treewidth ≡ sequential exact treewidth.  The
   parallel branch-and-bound shares only an Atomic incumbent between the
   root-branch tasks, so it must land on the very same exact minimum the
   single-domain search finds — on every graph (DESIGN.md §10). *)

type tw_case = { gseed : int; g_n : int; g_edges : int }

let tw_case : tw_case arbitrary =
  {
    gen =
      (fun rng ->
        let n = int_in rng 2 11 in
        {
          gseed = Random.State.int rng 1_000_000;
          g_n = n;
          g_edges = int_in rng 1 (n * (n - 1) / 2);
        });
    shrink =
      (fun c ->
        (if c.g_n > 2 then [ { c with g_n = c.g_n - 1 } ] else [])
        @ (if c.g_edges > 1 then [ { c with g_edges = c.g_edges - 1 } ] else [])
        @ if c.gseed > 0 then [ { c with gseed = c.gseed / 2 } ] else []);
    print = (fun c -> Fmt.str "seed=%d n=%d edges=%d" c.gseed c.g_n c.g_edges);
  }

let random_graph_atoms c =
  (* [g_edges] random edges over [g_n] named vertices, as binary atoms;
     the primal graph of the atomset is exactly that graph *)
  let rng = Random.State.make [| 0x97a4; c.gseed |] in
  let v i = Term.const (Printf.sprintf "tv%d" i) in
  let atoms =
    List.init c.g_edges (fun _ ->
        let i = Random.State.int rng c.g_n in
        let j = Random.State.int rng c.g_n in
        if i = j then None else Some (Atom.make "e" [ v i; v j ]))
  in
  Atomset.of_list (List.filter_map Fun.id atoms)

let parallel_tw_agrees c =
  let atoms = random_graph_atoms c in
  if Atomset.is_empty atoms then true
  else
    let seq = Par.with_jobs 1 (fun () -> Treewidth.exact atoms) in
    let par = Par.with_jobs 4 (fun () -> Treewidth.exact atoms) in
    seq = par

(* Law 8: the audited parallel core chase never diverges and never
   raises — law 5 extended to jobs > 1.  Audit scoping re-folds
   exhaustively alongside every scoped fold (both now fanning their
   seeded searches out over the pool) and raises on any non-isomorphic
   pair of cores, so completion is the scoped ≡ full law under a live
   pool. *)
let scoped_core_agrees_parallel c =
  Par.with_jobs 4 (fun () -> scoped_core_agrees c)

(* ------------------------------------------------------------------ *)
(* Law 9: flat codes round-trip and agree with boxed equality/hash
   (DESIGN.md §12).  [decode ∘ encode] is the identity up to
   [Atom.equal] (variable hints are not stored flat, and equality
   ignores them), and through [encode] the flat [equal]/[compare]/[hash]
   are exactly [Atom.equal] plus a lawful hash for it. *)

let gen_flat_atom rng =
  (* mixed arities over the shared var/const pools, nullary included so
     zero-length args arrays are exercised *)
  match int_in rng 0 3 with
  | 0 -> Atom.make "fz" []
  | 1 -> Atom.make "fu" [ pick rng term_pool ]
  | 2 -> Atom.make "fp" [ pick rng term_pool; pick rng term_pool ]
  | _ ->
      Atom.make "ft"
        [ pick rng term_pool; pick rng term_pool; pick rng term_pool ]

let atom_pair : (Atom.t * Atom.t) arbitrary =
  {
    gen = (fun rng -> (gen_flat_atom rng, gen_flat_atom rng));
    shrink = (fun _ -> []);
    print = (fun (a, b) -> Fmt.str "a=%a b=%a" Atom.pp a Atom.pp b);
  }

let flat_codes_lawful (a, b) =
  let fa = Flat.encode a and fb = Flat.encode b in
  Atom.equal (Flat.decode fa) a
  && Flat.equal fa (Flat.encode a)
  && Flat.equal fa (Flat.encode (Flat.decode fa))
  && Flat.equal fa fb = Atom.equal a b
  && (Flat.compare fa fb = 0) = Flat.equal fa fb
  && ((not (Flat.equal fa fb)) || Flat.hash fa = Flat.hash fb)

(* ------------------------------------------------------------------ *)
(* Law 10: flat substitution application agrees with the boxed one
   through [encode], and [apply_into]'s changed flag is exact: it
   reports true iff some code moved, i.e. iff σ(a) ≠ a. *)

type fsub_case = { fs_atom : Atom.t; fs_bindings : (Term.t * Term.t) list }

let fsub_case : fsub_case arbitrary =
  {
    gen =
      (fun rng ->
        { fs_atom = gen_flat_atom rng; fs_bindings = gen_bindings rng });
    shrink =
      (fun c ->
        List.map
          (fun b -> { c with fs_bindings = b })
          (without_each c.fs_bindings));
    print =
      (fun c ->
        Fmt.str "atom=%a σ=%s" Atom.pp c.fs_atom (pp_bindings c.fs_bindings));
  }

let flat_subst_agrees c =
  let sigma = subst_of c.fs_bindings in
  let fs = Flat.Subst.of_subst sigma in
  let fa = Flat.encode c.fs_atom in
  let boxed = Subst.apply_atom sigma c.fs_atom in
  let applied = Flat.Subst.apply fs fa in
  (* over-long scratch: only the arity-length prefix is meaningful *)
  let scratch = Array.make (Flat.arity fa + 2) Flat.no_code in
  let changed = Flat.Subst.apply_into fs ~args:(Flat.args fa) ~scratch in
  let prefix_agrees =
    let aargs = Flat.args applied in
    let ok = ref true in
    Array.iteri (fun i v -> if scratch.(i) <> v then ok := false) aargs;
    !ok
  in
  Flat.equal applied (Flat.encode boxed)
  && changed = not (Flat.equal applied fa)
  && prefix_agrees

(* ------------------------------------------------------------------ *)
(* Law 11: the flat solver is observationally the boxed solver.  Both
   representations perform the same search (same selection, same
   candidate order), so [Hom.all] must return the same witnesses in the
   same order — injective mode included — on every random src/tgt
   pair. *)

type hom_case = { h_src : Atom.t list; h_tgt : Atom.t list; h_inj : bool }

let hom_case : hom_case arbitrary =
  {
    gen =
      (fun rng ->
        {
          h_src = List.init (int_in rng 1 5) (fun _ -> gen_atom rng);
          h_tgt = List.init (int_in rng 1 12) (fun _ -> gen_atom rng);
          h_inj = Random.State.bool rng;
        });
    shrink =
      (fun c ->
        List.map (fun s -> { c with h_src = s }) (without_each c.h_src)
        @ List.map (fun t -> { c with h_tgt = t }) (without_each c.h_tgt));
    print =
      (fun c ->
        Fmt.str "inj=%b src=%a tgt=%a" c.h_inj Atomset.pp_verbose
          (Atomset.of_list c.h_src) Atomset.pp_verbose
          (Atomset.of_list c.h_tgt));
  }

let with_repr flat f =
  let saved = !Homo.Hom.flat_enabled in
  Homo.Hom.flat_enabled := flat;
  Fun.protect ~finally:(fun () -> Homo.Hom.flat_enabled := saved) f

let flat_solver_agrees c =
  let src = Atomset.of_list c.h_src in
  let tgt = Homo.Instance.of_atomset (Atomset.of_list c.h_tgt) in
  let run () = Homo.Hom.all ~injective:c.h_inj src tgt in
  let flat = with_repr true run and boxed = with_repr false run in
  List.length flat = List.length boxed && List.for_all2 Subst.equal flat boxed

(* ------------------------------------------------------------------ *)
(* Law 12: every chase engine lands on the same final instance whether
   its hom searches run on the flat or the boxed representation —
   the end-to-end differential for the representation switch.  Fresh
   nulls draw ranks from the process-wide freshness counter, so two
   runs agree up to isomorphism, not syntactic equality. *)

let engine_repr_invariant seed =
  let kb = Zoo.Randomkb.generate ~seed Zoo.Randomkb.default in
  let budget = { Chase.Variants.max_steps = 12; max_atoms = 2_000 } in
  List.for_all
    (fun engine ->
      let run () = Chase.run ~budget engine kb in
      let rf = with_repr true run and rb = with_repr false run in
      rf.Chase.terminated = rb.Chase.terminated
      && Homo.Morphism.isomorphic rf.Chase.final rb.Chase.final)
    Chase.[ Oblivious; Skolem; Restricted; Frugal; Core ]

(* ------------------------------------------------------------------ *)
(* Law 13: the analyzer respects the class-implication lattice on random
   KBs (DESIGN.md §13).  The syntactic inclusions — datalog ⟹ WA ⟹ JA,
   linear ⟹ guarded ⟹ frontier-guarded, guarded ⟹ weakly guarded,
   frontier-guarded ⟹ weakly frontier-guarded — must show up as flag
   implications in every report, and the verdict must honour the
   certificates: implies_fes ⟹ terminates-all, implies_bts ⟹ at least
   bts (random KBs carry no EGDs, so the verdict is never capped). *)

let analyze_budget = { Chase.Variants.max_steps = 60; max_atoms = 1_500 }

let analyzer_lattice_respected seed =
  let kb = Zoo.Randomkb.generate ~seed Zoo.Randomkb.default in
  let c = Rclasses.analyze (Kb.rules kb) in
  let r = Analyze.analyze ~budget:analyze_budget kb in
  let implies a b = (not a) || b in
  implies c.Rclasses.datalog c.Rclasses.weakly_acyclic
  && implies c.Rclasses.weakly_acyclic c.Rclasses.jointly_acyclic
  && implies c.Rclasses.linear c.Rclasses.guarded
  && implies c.Rclasses.guarded c.Rclasses.frontier_guarded
  && implies c.Rclasses.guarded c.Rclasses.weakly_guarded
  && implies c.Rclasses.frontier_guarded c.Rclasses.weakly_frontier_guarded
  && implies (Rclasses.implies_fes c)
       (r.Analyze.verdict = Analyze.Terminates_all)
  && implies (Rclasses.implies_bts c)
       (Analyze.verdict_rank r.Analyze.verdict
       >= Analyze.verdict_rank Analyze.Bts)

(* Law 14: analyzer certificates are sound on random KBs — whenever the
   verdict reaches terminates-restricted, re-running the restricted
   chase under the very same budget must reach a fixpoint (the engines
   are deterministic, so the certificate is a replayable witness). *)

let analyzer_certificate_sound seed =
  let kb = Zoo.Randomkb.generate ~seed Zoo.Randomkb.default in
  let r = Analyze.analyze ~budget:analyze_budget kb in
  if
    Analyze.verdict_rank r.Analyze.verdict
    >= Analyze.verdict_rank Analyze.Terminates_restricted
  then
    (Chase.run ~budget:analyze_budget Chase.Restricted kb).Chase.terminated
  else true

(* Law 15: every near-miss zoo mutant is rejected from exactly the class
   its one-edit mutation targets, while its parent genuinely belongs to
   it — at every scale the generator picks. *)

type mutant_case = { m_scale : int; m_index : int }

let mutant_case : mutant_case arbitrary =
  {
    gen =
      (fun rng ->
        let n = List.length (Zoo.Families.mutants ()) in
        { m_scale = int_in rng 1 5; m_index = Random.State.int rng n });
    shrink =
      (fun c ->
        (if c.m_scale > 1 then [ { c with m_scale = c.m_scale - 1 } ] else [])
        @ if c.m_index > 0 then [ { c with m_index = c.m_index - 1 } ] else []);
    print =
      (fun c ->
        let m = List.nth (Zoo.Families.mutants ~scale:c.m_scale ()) c.m_index in
        m.Zoo.Families.case.Zoo.Families.name);
  }

let zoo_flag (report : Rclasses.report) = function
  | Zoo.Families.Datalog -> report.Rclasses.datalog
  | Zoo.Families.Weakly_acyclic -> report.Rclasses.weakly_acyclic
  | Zoo.Families.Jointly_acyclic -> report.Rclasses.jointly_acyclic
  | Zoo.Families.Acyclic_grd -> report.Rclasses.agrd_sound
  | Zoo.Families.Linear -> report.Rclasses.linear
  | Zoo.Families.Guarded -> report.Rclasses.guarded
  | Zoo.Families.Frontier_guarded -> report.Rclasses.frontier_guarded

let mutant_rejected c =
  let m = List.nth (Zoo.Families.mutants ~scale:c.m_scale ()) c.m_index in
  let classes_of (case : Zoo.Families.case) =
    Rclasses.analyze (Kb.rules case.Zoo.Families.kb)
  in
  match m.Zoo.Families.broken with
  | Zoo.Families.Klass k ->
      zoo_flag (classes_of m.Zoo.Families.parent) k
      && not (zoo_flag (classes_of m.Zoo.Families.case) k)
  | Zoo.Families.Termination ->
      (* termination mutants keep their parent's classes; the analyzer
         side (never certified) is covered by test_analyze *)
      List.for_all
        (fun k -> zoo_flag (classes_of m.Zoo.Families.case) k)
        m.Zoo.Families.case.Zoo.Families.classes

(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* Laws 15–19: the serve wire protocol (DESIGN.md §15).  The codec is a
   pure function pair, so its contract is stated as laws: total decode,
   exact round trips, Truncated exactly on strict prefixes, Oversized
   carrying the offending length, and the request grammar printing a
   canonical form its own parser maps back to the same value. *)

module Pr = Server.Protocol

let wire_kinds =
  Pr.[ K_hello; K_req; K_ok; K_err; K_data; K_event; K_bye ]

let frame_arb =
  let gen rng =
    let kind = pick rng wire_kinds in
    let n = int_in rng 0 80 in
    (* full byte range: payloads are binary-safe, newlines included *)
    let payload = String.init n (fun _ -> Char.chr (Random.State.int rng 256)) in
    { Pr.kind; payload }
  in
  let shrink f =
    let p = f.Pr.payload in
    (if String.length p > 0 then
       [
         { f with Pr.payload = "" };
         { f with Pr.payload = String.sub p 0 (String.length p / 2) };
         { f with Pr.payload = String.map (fun _ -> 'a') p };
       ]
     else [])
    @ if f.Pr.kind <> Pr.K_ok then [ { f with Pr.kind = Pr.K_ok } ] else []
  in
  let print f = Fmt.str "%s %S" (Pr.kind_name f.Pr.kind) f.Pr.payload in
  { gen; shrink; print }

let frame_roundtrip f =
  let s = Pr.encode f in
  Pr.decode s = Ok (f, String.length s)

let frame_prefixes_truncated f =
  let s = Pr.encode f in
  let ok = ref true in
  for i = 0 to String.length s - 1 do
    match Pr.decode (String.sub s 0 i) with
    | Error Pr.Truncated -> ()
    | _ -> ok := false
  done;
  !ok

let oversized_arb =
  {
    gen = (fun rng -> Pr.max_payload + 1 + Random.State.int rng 1_000_000);
    shrink = (fun n -> if n > Pr.max_payload + 1 then [ Pr.max_payload + 1 ] else []);
    print = string_of_int;
  }

let oversized_rejected n =
  Pr.decode (Fmt.str "corechase/1 data %d\n" n) = Error (Pr.Oversized n)

let wire_bytes_arb =
  {
    gen =
      (fun rng ->
        let n = int_in rng 0 60 in
        String.init n (fun _ -> Char.chr (Random.State.int rng 256)));
    shrink =
      (fun s ->
        if s = "" then []
        else
          [
            String.sub s 0 (String.length s / 2);
            String.sub s 1 (String.length s - 1);
          ]);
    print = (fun s -> Fmt.str "%S" s);
  }

(* any exception escaping decode falsifies the law (check treats raises
   as failures), so this is the totality statement *)
let decode_total s = match Pr.decode s with Ok _ | Error _ -> true

let gen_sess rng =
  let n = int_in rng 1 8 in
  String.init n (fun _ ->
      pick rng [ 'a'; 'b'; 'k'; 'z'; 'A'; 'Z'; '0'; '9'; '_'; '-'; '.' ])

(* nonempty-trim multi-line body text (inline DLGP / ENTAIL queries are
   carried verbatim, so the law only needs the grammar's precondition:
   something non-blank) *)
let gen_body rng =
  let n = int_in rng 0 30 in
  "p(a)."
  ^ String.init n (fun _ ->
        pick rng [ 'a'; ' '; '\n'; '('; ')'; ':'; '-'; '.'; 'X'; ',' ])

let gen_path rng =
  let n = int_in rng 1 12 in
  String.init n (fun _ -> pick rng [ 'a'; 'b'; '/'; '.'; '-'; '_'; '0' ])

let chase_variants = Chase.[ Oblivious; Skolem; Restricted; Frugal; Core ]

let request_arb =
  let gen rng =
    match Random.State.int rng 12 with
    | 0 -> Pr.Open (gen_sess rng)
    | 1 -> Pr.Load { session = gen_sess rng; source = Pr.From_path (gen_path rng) }
    | 2 -> Pr.Load { session = gen_sess rng; source = Pr.From_text (gen_body rng) }
    | 3 ->
        Pr.Chase
          {
            session = gen_sess rng;
            variant = pick rng chase_variants;
            steps = int_in rng 1 1_000_000;
            atoms = int_in rng 1 1_000_000;
          }
    | 4 -> Pr.Entail { session = gen_sess rng; query = gen_body rng }
    | 5 -> Pr.Analyze (gen_sess rng)
    | 6 -> Pr.Stats (gen_sess rng)
    | 7 -> Pr.Close (gen_sess rng)
    | 8 -> Pr.Ping
    | 9 -> Pr.Metrics
    | 10 -> Pr.Sessions
    | _ -> Pr.Shutdown
  in
  let shrink = function
    | Pr.Open n when n <> "s" -> [ Pr.Open "s" ]
    | Pr.Load { session; _ } -> [ Pr.Open session; Pr.Open "s" ]
    | Pr.Chase { session; _ } -> [ Pr.Open session; Pr.Open "s" ]
    | Pr.Entail { session; _ } -> [ Pr.Open session; Pr.Open "s" ]
    | _ -> []
  in
  let print r = Fmt.str "%S" (Pr.print_request r) in
  { gen; shrink; print }

let request_roundtrip r = Pr.parse_request (Pr.print_request r) = Ok r

(* ------------------------------------------------------------------ *)
(* WAL codec totality (DESIGN.md §16): typed records survive the binary
   round trip, every strict prefix of a frame is torn, single-byte
   damage never passes the checksum, and neither decoder ever raises on
   byte soup.  Same discipline for the PR-5 text checkpoint parser. *)

module Wr = Storage.Record
module Wx = Storage.Xlog

let gen_wal_atom rng =
  Atom.make
    (pick rng [ "p"; "q"; "r" ])
    (List.init (int_in rng 0 3) (fun _ -> pick rng term_pool))

let gen_wal_atoms rng = List.init (int_in rng 0 4) (fun _ -> gen_wal_atom rng)

let gen_wal_subst rng = subst_of (gen_bindings rng)

let gen_wal_string rng =
  (* full byte range: record strings are binary-safe *)
  String.init (int_in rng 0 16) (fun _ -> Char.chr (Random.State.int rng 256))

let gen_record rng : Wr.t =
  match Random.State.int rng 10 with
  | 0 ->
      Wr.Begin
        {
          engine = pick rng [ "restricted"; "frugal"; "core" ];
          kb_path =
            (if Random.State.bool rng then Some (gen_wal_string rng) else None);
          kb_digest =
            (if Random.State.bool rng then Some (gen_wal_string rng) else None);
          max_steps = int_in rng 0 1_000_000;
          max_atoms = int_in rng 0 1_000_000;
          term_counter = int_in rng 0 1_000_000;
          generation_counter = int_in rng 0 1_000_000;
        }
  | 1 -> Wr.Start { sigma = gen_wal_subst rng }
  | 2 ->
      Wr.Add
        {
          index = int_in rng 1 10_000;
          pi_safe = gen_wal_subst rng;
          sigma = gen_wal_subst rng;
          added = gen_wal_atoms rng;
        }
  | 3 -> Wr.Retract { index = int_in rng 1 10_000; sigma = gen_wal_subst rng }
  | 4 -> Wr.Merge { sigma = gen_wal_subst rng }
  | 5 ->
      Wr.Round
        {
          rounds = int_in rng 0 1_000;
          steps = int_in rng 0 10_000;
          snapshot_index = int_in rng (-1) 100;
          term_counter = int_in rng 0 1_000_000;
          generation_counter = int_in rng 0 1_000_000;
        }
  | 6 ->
      Wr.Snap_step
        {
          index = int_in rng 0 10_000;
          pi_safe = gen_wal_subst rng;
          sigma = gen_wal_subst rng;
          pre = gen_wal_atoms rng;
          inst = gen_wal_atoms rng;
        }
  | 7 -> Wr.Sess_op (gen_wal_string rng)
  | 8 ->
      Wr.Sess_chase
        {
          session = gen_wal_string rng;
          variant = pick rng [ "core"; "restricted" ];
          max_steps = int_in rng 0 1_000_000;
          max_atoms = int_in rng 0 1_000_000;
          outcome = pick rng [ "fixpoint"; "steps"; "deadline" ];
          chase_steps = int_in rng 0 10_000;
          final = gen_wal_atoms rng;
        }
  | _ ->
      Wr.Sess_gen
        { session = gen_wal_string rng; generation = int_in rng 0 1_000 }

let record_arb =
  {
    gen = gen_record;
    shrink = (fun _ -> [ Wr.Sess_op "" ]);
    print = (fun r -> Fmt.str "%a (%d bytes)" Wr.pp r (String.length (Wr.encode r)));
  }

let record_roundtrip r =
  match Wr.decode (Wr.encode r) with Ok r' -> Wr.equal r r' | Error _ -> false

let record_prefixes_error r =
  let bytes = Wr.encode r in
  let ok = ref true in
  for len = 0 to String.length bytes - 1 do
    match Wr.decode (String.sub bytes 0 len) with
    | Error _ -> ()
    | Ok _ -> ok := false
  done;
  !ok

let framed_record_arb =
  {
    gen = (fun rng -> (int_in rng 0 1_000_000, gen_record rng));
    shrink = (fun (lsn, r) -> if lsn > 1 then [ (1, r) ] else []);
    print = (fun (lsn, r) -> Fmt.str "lsn %d %a" lsn Wr.pp r);
  }

let frame_prefixes_torn (lsn, r) =
  let frame = Wx.encode_frame ~lsn (Wr.encode r) in
  let ok = ref true in
  for len = 0 to String.length frame - 1 do
    match Wx.decode_frame (String.sub frame 0 len) with
    | Error Wx.Torn -> ()
    | _ -> ok := false
  done;
  !ok

let flipped_frame_arb =
  {
    gen =
      (fun rng ->
        let lsn = int_in rng 0 1_000_000 in
        let r = gen_record rng in
        let frame = Wx.encode_frame ~lsn (Wr.encode r) in
        (lsn, r, Random.State.int rng (String.length frame),
         1 lsl Random.State.int rng 8));
    shrink = (fun _ -> []);
    print =
      (fun (lsn, r, pos, mask) ->
        Fmt.str "lsn %d %a, flip bit 0x%02x at byte %d" lsn Wr.pp r mask pos);
  }

(* a flip may land in the length field (frame now torn/malformed) or
   anywhere else (checksum mismatch) — it must never decode back to the
   original frame as if nothing happened *)
let frame_flip_detected (lsn, r, pos, mask) =
  let payload = Wr.encode r in
  let frame = Wx.encode_frame ~lsn payload in
  let b = Bytes.of_string frame in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor mask));
  match Wx.decode_frame (Bytes.to_string b) with
  | Ok (lsn', p', _) -> not (lsn' = lsn && p' = payload)
  | Error _ -> true

(* raising inside prop counts as falsified, so these are the totality
   statements for both decoder layers *)
let wal_decode_total s =
  (match Wr.decode s with Ok _ | Error _ -> true)
  && (match Wx.decode_frame s with Ok _ | Error _ -> true)

(* ------------------------------------------------------------------ *)
(* Text checkpoint parser totality (DESIGN.md §16 hardening): feed the
   PR-5 reader random bytes, prefixes of a genuine checkpoint, and
   single-byte corruptions of one — every failure must be a structured
   [Error], never an exception. *)

let valid_ckpt_bytes =
  lazy
    (Term.reset_counter_for_tests ();
     let kb = Zoo.Staircase.kb () in
     let path = Filename.temp_file "corechase" ".ckpt" in
     Fun.protect
       ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
       (fun () ->
         let budget = { Chase.Variants.max_steps = 8; max_atoms = 1_000 } in
         let (_ : Chase.Variants.run) =
           Chase.Variants.restricted ~budget
             ~checkpoint:(fun st ->
               Chase.Checkpoint.save ~path ~engine:"restricted" ~budget st)
             kb
         in
         let ic = open_in_bin path in
         Fun.protect
           ~finally:(fun () -> close_in ic)
           (fun () -> really_input_string ic (in_channel_length ic))))

let ckpt_input_arb =
  let gen rng =
    let valid = Lazy.force valid_ckpt_bytes in
    match Random.State.int rng 3 with
    | 0 ->
        (* raw byte soup *)
        String.init (int_in rng 0 200) (fun _ ->
            Char.chr (Random.State.int rng 256))
    | 1 ->
        (* a strict prefix of a genuine checkpoint *)
        String.sub valid 0 (Random.State.int rng (String.length valid))
    | _ ->
        (* a genuine checkpoint with one byte flipped *)
        let b = Bytes.of_string valid in
        let pos = Random.State.int rng (Bytes.length b) in
        Bytes.set b pos (Char.chr (Random.State.int rng 256));
        Bytes.to_string b
  in
  let shrink s =
    if s = "" then []
    else
      [ String.sub s 0 (String.length s / 2); String.sub s 1 (String.length s - 1) ]
  in
  { gen; shrink; print = (fun s -> Fmt.str "%S" s) }

let checkpoint_reader_total bytes =
  let path = Filename.temp_file "corechase" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let oc = open_out_bin path in
      output_string oc bytes;
      close_out oc;
      (match Chase.Checkpoint.read_header path with Ok _ | Error _ -> true)
      &&
      let kb = Zoo.Staircase.kb () in
      match Chase.Checkpoint.load kb path with Ok _ | Error _ -> true)

let suites =
  [
    ( "props.laws",
      [
        check ~count:300 "subst compose associative" subst_triple
          compose_associative;
        check ~count:200 "dlgp print/parse round trip" dlgp_case dlgp_roundtrip;
        check ~count:200 "core idempotent" atom_list core_idempotent;
        check ~count:200 "chase invariant under renaming" seed_arb
          chase_renaming_invariant;
        check ~count:200 "scoped core agrees with full (audit)" scoped_case
          scoped_core_agrees;
        check ~count:400 "trace json round trip" event_arb json_roundtrip;
        check ~count:200 "parallel exact treewidth = sequential" tw_case
          parallel_tw_agrees;
        check ~count:120 "audited core chase never diverges (jobs=4)"
          scoped_case scoped_core_agrees_parallel;
        check ~count:400 "flat codes round trip, equal/hash lawful" atom_pair
          flat_codes_lawful;
        check ~count:400 "flat substitution agrees with boxed" fsub_case
          flat_subst_agrees;
        check ~count:150 "flat solver = boxed solver (Hom.all)" hom_case
          flat_solver_agrees;
        check ~count:50 "chase engines invariant under hom repr" seed_arb
          engine_repr_invariant;
        check ~count:300 "analyzer respects the class lattice" seed_arb
          analyzer_lattice_respected;
        check ~count:200 "analyzer certificates are sound" seed_arb
          analyzer_certificate_sound;
        check ~count:100 "zoo mutants rejected from the broken class"
          mutant_case mutant_rejected;
        check ~count:400 "wire frames round trip" frame_arb frame_roundtrip;
        check ~count:200 "wire frame prefixes are truncated" frame_arb
          frame_prefixes_truncated;
        check ~count:300 "oversized length prefixes rejected" oversized_arb
          oversized_rejected;
        check ~count:500 "wire decode total on random bytes" wire_bytes_arb
          decode_total;
        check ~count:400 "requests round trip through the grammar"
          request_arb request_roundtrip;
        check ~count:400 "wal records round trip" record_arb record_roundtrip;
        check ~count:150 "wal record prefixes are errors" record_arb
          record_prefixes_error;
        check ~count:150 "wal frame prefixes are torn" framed_record_arb
          frame_prefixes_torn;
        check ~count:400 "wal frame bit flips detected" flipped_frame_arb
          frame_flip_detected;
        check ~count:500 "wal decode total on random bytes" wire_bytes_arb
          wal_decode_total;
        check ~count:200 "checkpoint reader total on byte soup"
          ckpt_input_arb checkpoint_reader_total;
      ] );
  ]
