open Syntax

let may_depend_pred r ~on =
  let head_preds = Atomset.preds (Rule.head on) in
  List.exists
    (fun (p, ar) ->
      List.exists (fun (q, ar') -> String.equal p q && ar = ar') head_preds)
    (Atomset.preds (Rule.body r))

let freeze aset =
  let subst =
    List.fold_left
      (fun s v ->
        Subst.add v (Term.const (Printf.sprintf "frz_%d" (Term.rank v))) s)
      Subst.empty (Atomset.vars aset)
  in
  (Subst.apply subst aset, subst)

let depends_frozen r ~on =
  let on = Rule.rename_apart on and r = Rule.rename_apart r in
  let frozen_body, frz = freeze (Rule.body on) in
  let tr = Chase.Trigger.make on frz in
  let app = Chase.Trigger.apply tr frozen_body in
  let created = app.Chase.Trigger.produced in
  let after = app.Chase.Trigger.result in
  let indexed = Homo.Instance.of_atomset after in
  (* a homomorphism of body(r) into the result that touches a created atom
     and yields an unsatisfied trigger *)
  List.exists
    (fun pi ->
      let image = Subst.apply pi (Rule.body r) in
      (not (Atomset.is_empty (Atomset.inter image (Atomset.diff created frozen_body))))
      && not (Chase.Trigger.satisfied (Chase.Trigger.make r pi) after))
    (Homo.Hom.all (Rule.body r) indexed)

let graph_with dep rules =
  let arr = Array.of_list rules in
  let n = Array.length arr in
  List.concat
    (List.init n (fun i ->
         List.concat
           (List.init n (fun j ->
                if dep arr.(j) ~on:arr.(i) then [ (i, j) ] else []))))

let pred_graph rules = graph_with may_depend_pred rules

let frozen_graph rules = graph_with depends_frozen rules

(* Tarjan's strongly connected components over an edge list on [0, n).
   Components come back in reverse topological order (consumers first);
   callers that care re-sort, the analyzer only inspects each SCC alone. *)
let sccs ~n edges =
  let adj = Array.make n [] in
  List.iter (fun (i, j) -> adj.(i) <- j :: adj.(i)) edges;
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let counter = ref 0 in
  let out = ref [] in
  let rec strongconnect v =
    index.(v) <- !counter;
    lowlink.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) < 0 then begin
          strongconnect w;
          lowlink.(v) <- min lowlink.(v) lowlink.(w)
        end
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      adj.(v);
    if lowlink.(v) = index.(v) then begin
      let rec pop acc =
        match !stack with
        | w :: rest ->
            stack := rest;
            on_stack.(w) <- false;
            if w = v then w :: acc else pop (w :: acc)
        | [] -> acc
      in
      out := pop [] :: !out
    end
  in
  for v = 0 to n - 1 do
    if index.(v) < 0 then strongconnect v
  done;
  !out

let cyclic_sccs ~n edges =
  let self = List.filter (fun (i, j) -> i = j) edges in
  List.filter
    (fun comp ->
      match comp with
      | [] -> false
      | [ v ] -> List.mem (v, v) self
      | _ -> true)
    (sccs ~n edges)

let agrd_sound rules =
  let n = List.length rules in
  let edges = pred_graph rules in
  let adj = Array.make n [] in
  List.iter (fun (i, j) -> adj.(i) <- j :: adj.(i)) edges;
  let color = Array.make n 0 in
  let rec has_cycle i =
    if color.(i) = 1 then true
    else if color.(i) = 2 then false
    else begin
      color.(i) <- 1;
      let c = List.exists has_cycle adj.(i) in
      color.(i) <- 2;
      c
    end
  in
  not (List.exists has_cycle (List.init n Fun.id))
