open Syntax

type t = { name : string; measure : Atomset.t -> int }

let size = { name = "size"; measure = Atomset.cardinal }

let term_count =
  { name = "terms"; measure = (fun a -> List.length (Atomset.terms a)) }

let treewidth =
  { name = "treewidth"; measure = (fun a -> fst (Treewidth.best_effort a)) }

let treewidth_upper =
  { name = "treewidth-ub"; measure = (fun a -> Treewidth.upper_bound a) }

let pathwidth =
  { name = "pathwidth"; measure = (fun a -> fst (Treewidth.Pathwidth.of_atomset a)) }

let series m instances = List.map m.measure instances

let uniformly_bounded_by k xs = List.for_all (fun x -> x <= k) xs

let uniform_bound = function
  | [] -> None
  | x :: xs -> Some (List.fold_left max x xs)

let recurringly_bounded_proxy ~k ~window xs =
  if window <= 0 then invalid_arg "Measures: window must be positive";
  let arr = Array.of_list xs in
  let n = Array.length arr in
  if n = 0 then true
  else begin
    let ok = ref true in
    let start = ref 0 in
    while !ok && !start + window <= n do
      let found = ref false in
      for i = !start to !start + window - 1 do
        if arr.(i) <= k then found := true
      done;
      if not !found then ok := false;
      incr start
    done;
    !ok
  end

let is_monotone_growing xs =
  let rec go strictly = function
    | x :: (y :: _ as rest) ->
        if y < x then false else go (strictly || y > x) rest
    | _ -> strictly
  in
  go false xs
