lib/homo/cq.mli: Atomset Kb Syntax Term
