(** Hypergraph view of atomsets and a (generalized) hypertree width upper
    bound — the third structural measure Section 5 mentions alongside
    treewidth and cliquewidth.

    The hypergraph of an atomset has the terms as vertices and one
    hyperedge per atom (its term set).  A generalized hypertree
    decomposition reuses a tree decomposition but charges each bag the
    number of hyperedges needed to cover it; generalized hypertree width
    (ghw) is the minimum over decompositions of the maximum bag cover
    number.  Computing ghw exactly is NP-hard even for fixed widths; we
    report the {e upper bound} obtained from the min-fill and min-degree
    tree decompositions with exact per-bag set covers — sound for every
    "ghw ≤ k" claim, and exact on the acyclic (ghw = 1) case whenever one
    of the decompositions is width-optimal. *)

open Syntax

type t

val of_atomset : Atomset.t -> t

val vertex_count : t -> int

val edge_count : t -> int
(** Distinct hyperedges (atom term sets, deduplicated). *)

val cover_number : t -> Term.t list -> int
(** Minimum number of hyperedges whose union contains the given terms
    (exact, branch and bound).
    @raise Invalid_argument if some term is covered by no hyperedge. *)

val ghw_upper : Atomset.t -> int
(** Upper bound on the generalized hypertree width: the best max-bag-cover
    over the min-fill and min-degree decompositions.  [0] for the empty
    atomset. *)

val is_acyclic_evidence : Atomset.t -> bool
(** [ghw_upper = 1]: certifies α-acyclicity-like behaviour (every bag of
    some decomposition is covered by a single atom). *)
