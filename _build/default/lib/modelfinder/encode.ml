open Syntax

type t = {
  nvars : int;
  clauses : int list list;
  domain : Term.t list;
  decode : bool array -> Atomset.t;
}

(* All assignments of [vars] to domain indices [0..d-1]. *)
let assignments vars d =
  let rec go = function
    | [] -> [ [] ]
    | v :: rest ->
        let tails = go rest in
        List.concat_map
          (fun e -> List.map (fun tl -> (v, e) :: tl) tails)
          (List.init d Fun.id)
  in
  go vars

let encode ~domain_size ?forbid ?(forbid_all = []) kb =
  if domain_size <= 0 then invalid_arg "Encode: domain_size must be positive";
  let forbidden =
    (match forbid with None -> [] | Some q -> [ q ]) @ forbid_all
  in
  let query_consts =
    List.concat_map (fun q -> Atomset.consts (Kb.Query.atoms q)) forbidden
  in
  let consts =
    List.sort_uniq Term.compare (Kb.consts kb @ query_consts)
  in
  if List.length consts > domain_size then
    invalid_arg "Encode: domain_size smaller than the number of constants";
  let domain =
    consts
    @ List.init
        (domain_size - List.length consts)
        (fun i -> Term.const (Printf.sprintf "_d%d" i))
  in
  let domain_arr = Array.of_list domain in
  let d = domain_size in
  (* element index of a constant *)
  let const_index =
    let tbl = Hashtbl.create 16 in
    List.iteri (fun i t -> Hashtbl.replace tbl t i) domain;
    fun t ->
      match Hashtbl.find_opt tbl t with
      | Some i -> i
      | None -> invalid_arg "Encode: unknown constant"
  in
  (* SAT variable per ground atom *)
  let next_var = ref 0 in
  let fresh_var () =
    incr next_var;
    !next_var
  in
  let atom_vars : (string * int list, int) Hashtbl.t = Hashtbl.create 256 in
  let atom_var p tuple =
    match Hashtbl.find_opt atom_vars (p, tuple) with
    | Some v -> v
    | None ->
        let v = fresh_var () in
        Hashtbl.replace atom_vars (p, tuple) v;
        v
  in
  let clauses = ref [] in
  let emit c = clauses := c :: !clauses in
  (* ground an atom under an assignment (variable -> element index) *)
  let ground_atom env a =
    let tuple =
      List.map
        (fun arg ->
          match arg with
          | Term.Const _ -> const_index arg
          | Term.Var _ -> (
              match List.assoc_opt arg env with
              | Some e -> e
              | None -> invalid_arg "Encode: unbound variable in grounding"))
        (Atom.args a)
    in
    atom_var (Atom.pred a) tuple
  in
  (* 1. facts *)
  let fact_atoms = Atomset.to_list (Kb.facts kb) in
  let fact_nulls = Atomset.vars (Kb.facts kb) in
  (match fact_nulls with
  | [] -> List.iter (fun a -> emit [ ground_atom [] a ]) fact_atoms
  | nulls ->
      let selectors =
        List.map
          (fun env ->
            let s = fresh_var () in
            List.iter (fun a -> emit [ -s; ground_atom env a ]) fact_atoms;
            s)
          (assignments nulls d)
      in
      emit selectors);
  (* 2. rules *)
  List.iter
    (fun r ->
      let body = Atomset.to_list (Rule.body r) in
      let head = Atomset.to_list (Rule.head r) in
      let ex = Rule.existential_vars r in
      List.iter
        (fun env ->
          let neg_body = List.map (fun a -> -ground_atom env a) body in
          match ex with
          | [] -> List.iter (fun h -> emit (neg_body @ [ ground_atom env h ])) head
          | _ ->
              let selectors =
                List.map
                  (fun ex_env ->
                    let s = fresh_var () in
                    List.iter
                      (fun h -> emit [ -s; ground_atom (ex_env @ env) h ])
                      head;
                    s)
                  (assignments ex d)
              in
              emit (neg_body @ selectors))
        (assignments (Rule.universal_vars r) d))
    (Kb.rules kb);
  (* 3. negated queries *)
  List.iter
    (fun q ->
      let atoms = Atomset.to_list (Kb.Query.atoms q) in
      let qvars = Kb.Query.vars q in
      List.iter
        (fun env -> emit (List.map (fun a -> -ground_atom env a) atoms))
        (assignments qvars d))
    forbidden;
  let decode model =
    Hashtbl.fold
      (fun (p, tuple) v acc ->
        if v < Array.length model && model.(v) then
          Atomset.add
            (Atom.make p (List.map (fun e -> domain_arr.(e)) tuple))
            acc
        else acc)
      atom_vars Atomset.empty
  in
  { nvars = !next_var; clauses = List.rev !clauses; domain; decode }
