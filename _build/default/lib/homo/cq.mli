(** Classical conjunctive-query theory on top of the homomorphism and core
    machinery (Chandra–Merlin): containment, equivalence, minimisation.

    For Boolean CQs [q₁], [q₂] read as existentially closed conjunctions:
    [q₁ ⊑ q₂] (q₁ is contained in q₂ — every model of q₁ satisfies q₂) iff
    there is a homomorphism from [q₂]'s atoms to [q₁]'s atoms treating
    [q₁]'s variables as frozen constants; equivalently, iff [q₂] maps into
    [q₁] homomorphically.  The minimal equivalent query is the core. *)

open Syntax

val contained_in : Kb.Query.t -> Kb.Query.t -> bool
(** [contained_in q1 q2]: [q1 ⊑ q2]. *)

val equivalent : Kb.Query.t -> Kb.Query.t -> bool

val minimize : Kb.Query.t -> Kb.Query.t
(** The core of the query: the unique (up to isomorphism) minimal
    equivalent CQ. *)

val is_minimal : Kb.Query.t -> bool

val evaluate : Kb.Query.t -> Atomset.t -> bool
(** Boolean evaluation over an instance (homomorphism existence). *)

val answers :
  answer_vars:Term.t list -> Kb.Query.t -> Atomset.t -> Term.t list list
(** All answer tuples: images of the answer variables under homomorphisms
    of the query into the instance, deduplicated, sorted.  (On chase
    results, tuples containing nulls are "possible" rather than "certain"
    answers — {!certain_answers} filters them.) *)

val certain_answers :
  answer_vars:Term.t list -> Kb.Query.t -> Atomset.t -> Term.t list list
(** {!answers} restricted to all-constant tuples: evaluated on a universal
    model (e.g. a terminated chase result), these are exactly the certain
    answers of the query over the KB. *)
