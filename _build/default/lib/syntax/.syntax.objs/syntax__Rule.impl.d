lib/syntax/rule.ml: Atom Atomset Fmt List String Subst Term
