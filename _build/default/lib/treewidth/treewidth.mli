(** Treewidth toolkit (Section 4 of the paper).

    Entry module of the [treewidth] library: {!Graph} and {!Primal} build
    Gaifman graphs of atomsets; {!Decomposition} implements Definition 4
    with validity checking; {!Elimination} turns elimination orders into
    decompositions; {!Exact} computes exact treewidth by branch-and-bound;
    {!Lowerbound} and {!Grid} provide the lower-bound side (Fact 2);
    {!Pathwidth} and {!Hypergraph} add the further structural measures
    Section 5 alludes to. *)

module Graph : module type of Graph

module Primal : module type of Primal

module Decomposition : module type of Decomposition

module Elimination : module type of Elimination

module Exact : module type of Exact

module Lowerbound : module type of Lowerbound

module Grid : module type of Grid

module Pathwidth : module type of Pathwidth

module Hypergraph : module type of Hypergraph

module Dot : module type of Dot

open Syntax

type heuristic = Min_fill | Min_degree

val upper_bound : ?heuristic:heuristic -> Atomset.t -> int
(** Heuristic upper bound on [tw(a)] via a greedy elimination order.
    [-1] on atomsets without terms. *)

val lower_bound : Atomset.t -> int
(** Sound lower bound (degeneracy / clique based). *)

val exact : Atomset.t -> int option
(** Exact treewidth; [None] when the atomset has more terms than
    {!Exact.max_vertices}. *)

val best_effort : Atomset.t -> int * bool
(** Exact when feasible (flag [true]), otherwise the min-fill upper
    bound. *)

val decomposition : ?heuristic:heuristic -> Atomset.t -> Decomposition.t
(** A valid tree decomposition witnessing [upper_bound ~heuristic]. *)

val at_most : Atomset.t -> int -> bool
(** [at_most a k]: is [tw(a) ≤ k]?  Cheap bounds first, exact when
    needed; conservatively [false] when undecided. *)
