(* Length-prefixed binary frames with per-record CRC and a monotonic
   LSN, after tarantool's xlog discipline (DESIGN.md §16).  One frame:

     [len:u32le][lsn:u64le][crc:u32le][payload bytes]

   where [len] counts only the payload and [crc] covers the 8 LSN bytes
   followed by the payload — a frame whose length field was torn off
   mid-write cannot masquerade as valid, because the checksum seals the
   identity of the record, not just its bytes.

   The pure codec ([encode_frame]/[decode_frame]) carries the totality
   laws in test/test_props.ml; the file reader below adds the magic
   header and the torn-vs-corrupt classification: an incomplete frame at
   end-of-file is a torn tail (the crash interrupted the final write —
   truncate and warn), a checksum failure whose frame does NOT reach
   end-of-file is corruption (refuse with a structured error). *)

let header_bytes = 16

let max_payload = 1 lsl 28 (* 256 MiB: far above any real record *)

type frame_error =
  | Torn  (** incomplete frame: more bytes were expected *)
  | Crc_mismatch of int
      (** a full frame is present but its checksum fails; the [int] is
          the frame's total extent in bytes, so a file reader can tell
          a torn final write (frame ends exactly at EOF) from mid-file
          corruption *)
  | Malformed of string  (** impossible length field *)

let pp_frame_error ppf = function
  | Torn -> Fmt.string ppf "torn (incomplete frame)"
  | Crc_mismatch _ -> Fmt.string ppf "crc mismatch"
  | Malformed m -> Fmt.pf ppf "malformed (%s)" m

let u32le_bytes n =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Int32.of_int (n land 0xffffffff));
  Bytes.unsafe_to_string b

let u64le_bytes n =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int n);
  Bytes.unsafe_to_string b

let read_u32le s pos =
  let v = ref 0 in
  for i = 3 downto 0 do
    v := (!v lsl 8) lor Char.code s.[pos + i]
  done;
  !v

let read_u64le s pos =
  let v = ref 0L in
  for i = 7 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code s.[pos + i]))
  done;
  !v

let encode_frame ~lsn payload =
  if lsn < 0 then invalid_arg "Xlog.encode_frame: negative lsn";
  if String.length payload > max_payload then
    invalid_arg "Xlog.encode_frame: oversized payload";
  let lsn_bytes = u64le_bytes lsn in
  let crc = Crc32.pair lsn_bytes payload in
  String.concat ""
    [ u32le_bytes (String.length payload); lsn_bytes; u32le_bytes crc; payload ]

let decode_frame ?(pos = 0) buf =
  let remaining = String.length buf - pos in
  if remaining < header_bytes then Error Torn
  else begin
    let len = read_u32le buf pos in
    if len > max_payload then
      Error (Malformed (Printf.sprintf "payload length %d exceeds limit" len))
    else begin
      let lsn64 = read_u64le buf (pos + 4) in
      let crc = read_u32le buf (pos + 12) in
      if remaining < header_bytes + len then Error Torn
      else begin
        let payload = String.sub buf (pos + header_bytes) len in
        let lsn_bytes = String.sub buf (pos + 4) 8 in
        let extent = header_bytes + len in
        if Crc32.pair lsn_bytes payload <> crc then Error (Crc_mismatch extent)
        else if Int64.compare lsn64 0L < 0 || Int64.to_int lsn64 |> Int64.of_int <> lsn64
        then Error (Malformed "bad lsn")
        else Ok (Int64.to_int lsn64, payload, extent)
      end
    end
  end

(* ---------------------------------------------------------------- *)
(* Files: an 8-byte magic followed by frames. *)

let wal_magic = "CWAL0001"

let snap_magic = "CSNP0001"

let magic_bytes = 8

let read_whole_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* What a scan of one file yields.  [valid_size] is the byte offset just
   past the last valid frame: a writer reopening the file truncates to
   it, which is exactly the truncate-and-warn rule for torn tails. *)
type scan = {
  frames : (int * string) list;  (** (lsn, payload) in file order *)
  valid_size : int;
  torn : bool;  (** a torn tail follows [valid_size] *)
}

(* Starts-with-the-magic probe used by `corechase resume` to recognise a
   WAL file/dir it cannot resume directly and hint at --wal. *)
let file_has_magic path =
  match open_in_bin path with
  | exception Sys_error _ -> false
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match really_input_string ic magic_bytes with
          | m -> String.equal m wal_magic || String.equal m snap_magic
          | exception End_of_file -> false)

let scan_file ~magic path =
  match read_whole_file path with
  | exception Sys_error m -> Error m
  | buf ->
      let size = String.length buf in
      if size < magic_bytes then
        (* creat-then-crash before even the magic landed: an empty torn
           file, rewritten from scratch on the next open *)
        if size = 0 then Ok { frames = []; valid_size = 0; torn = false }
        else Ok { frames = []; valid_size = 0; torn = true }
      else if not (String.equal (String.sub buf 0 magic_bytes) magic) then
        Error (Printf.sprintf "%s: bad magic (not a %s file)" path magic)
      else begin
        let frames = ref [] in
        let pos = ref magic_bytes in
        let result = ref None in
        while !result = None do
          if !pos = size then
            result := Some (Ok { frames = List.rev !frames; valid_size = !pos; torn = false })
          else
            match decode_frame ~pos:!pos buf with
            | Ok (lsn, payload, consumed) ->
                frames := (lsn, payload) :: !frames;
                pos := !pos + consumed
            | Error Torn ->
                result := Some (Ok { frames = List.rev !frames; valid_size = !pos; torn = true })
            | Error (Crc_mismatch extent) when !pos + extent = size ->
                (* the final frame's bytes are all there but the
                   checksum fails: the crash tore the write itself *)
                result := Some (Ok { frames = List.rev !frames; valid_size = !pos; torn = true })
            | Error (Crc_mismatch _) ->
                result :=
                  Some
                    (Error
                       (Printf.sprintf "%s: checksum failure at offset %d (mid-file corruption)" path !pos))
            | Error (Malformed m) ->
                result :=
                  Some (Error (Printf.sprintf "%s: %s at offset %d" path m !pos))
        done;
        match !result with Some r -> r | None -> assert false
      end

(* ---------------------------------------------------------------- *)
(* Writer: a raw fd so fsync is available.  [append] writes one whole
   frame with a single [write] loop; [sync] is a real fsync. *)

type writer = { fd : Unix.file_descr; path : string }

let write_all fd s =
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd b !off (len - !off)
  done

let create_writer ~magic path =
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  write_all fd magic;
  { fd; path }

(* Reopen an existing file for appending, truncating away a torn tail
   first ([valid_size] from {!scan_file}).  A file whose magic itself
   was torn off ([valid_size] = 0) is rewritten from scratch. *)
let append_writer ~magic path ~valid_size =
  if valid_size = 0 then create_writer ~magic path
  else begin
    let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
    Unix.ftruncate fd valid_size;
    ignore (Unix.lseek fd 0 Unix.SEEK_END);
    { fd; path }
  end

let append w ~lsn payload = write_all w.fd (encode_frame ~lsn payload)

let sync w = Unix.fsync w.fd

let close_writer w = try Unix.close w.fd with Unix.Unix_error _ -> ()
