lib/treewidth/exact.ml: Array Graph Hashtbl List
