(** Classic rulesets populating Figure 1's class landscape, plus standard
    test KBs.

    - {!bts_not_fes}: [r(X,Y) → ∃Z. r(Y,Z)] — treewidth-bounded chases
      (a path), never core-chase-terminating on seed facts
      (Proposition 13's first witness);
    - {!fes_not_bts}: [r(X,Y) ∧ r(Y,Z) → ∃V. r(X,X) ∧ r(X,Z) ∧ r(Z,V)] —
      core chase terminates, restricted-chase treewidth explodes is not the
      point: its bts witness fails (Proposition 13's second witness);
    - {!core_terminating}: the folklore KB on which the core chase
      terminates but the restricted chase runs forever;
    - {!transitive_closure}: plain datalog;
    - {!guarded_ancestor}: a guarded ruleset with existentials that is
      bts by guardedness. *)

open Syntax

val bts_not_fes : unit -> Kb.t
(** Facts [{r(a,b)}]. *)

val fes_not_bts : unit -> Kb.t
(** Facts [{r(a,b), r(b,c)}]. *)

val core_terminating : unit -> Kb.t
(** [p(X) → ∃Y. e(X,Y) ∧ p(Y)] and [p(X) → e(X,X)] over [{p(a)}]. *)

val transitive_closure : unit -> Kb.t
(** Edges [e(a,b), e(b,c), e(c,d)] and the rule
    [e(X,Y) ∧ e(Y,Z) → e(X,Z)]. *)

val guarded_ancestor : unit -> Kb.t
(** [person(X) → ∃Y. parent(X,Y) ∧ person(Y)] over [{person(alice)}] — the
    textbook guarded non-terminating ruleset. *)

val all_named : unit -> (string * Kb.t) list
(** Every KB above with a stable name, for the classification harness. *)
