(* A guided tour of the steepening staircase (Sections 6 and 8 of the
   paper): the KB whose core chase is treewidth-bounded by 2 although no
   universal model has finite treewidth — and how the robust aggregation
   still extracts a treewidth-1 finitely universal model from it.

   Run with:  dune exec examples/staircase_tour.exe *)

open Syntax

let tw a = fst (Treewidth.best_effort a)

let () =
  let kb = Zoo.Staircase.kb () in
  Fmt.pr "The steepening staircase K_h:@.%a@.@." Kb.pp kb;

  (* 1. The core chase walks the staircase one column at a time. *)
  let budget = { Chase.Variants.max_steps = 45; max_atoms = 2_000 } in
  let cc = Chase.Variants.core ~budget kb in
  let d = cc.Chase.Variants.derivation in
  Fmt.pr "Core chase (%d steps, %s):@."
    (Chase.Derivation.length d - 1)
    (match cc.Chase.Variants.outcome with
    | Chase.Variants.Fixpoint -> "terminated"
    | _ -> "budget exhausted — it never terminates");
  List.iter
    (fun st ->
      if st.Chase.Derivation.index mod 5 = 0 then
        Fmt.pr "  F_%-3d  %3d atoms   treewidth %d@." st.Chase.Derivation.index
          (Atomset.cardinal st.Chase.Derivation.instance)
          (tw st.Chase.Derivation.instance))
    (Chase.Derivation.steps d);
  Fmt.pr "Every F_i has treewidth ≤ 2 (Proposition 4).@.@.";

  (* 2. Yet the natural aggregation D* = ∪F_i accumulates the whole
     staircase, which contains grids of unbounded size (Proposition 5). *)
  let nat = Chase.Derivation.natural_aggregation d in
  Fmt.pr "Natural aggregation D*: %d atoms, treewidth %d, contains a 2x2 grid: %b@."
    (Atomset.cardinal nat) (tw nat)
    (Treewidth.Grid.contains ~n:2 nat);

  (* 3. The robust aggregation instead collapses the staircase into the
     infinite column Ĩ^h — a model that is only FINITELY universal, but
     has treewidth 1 (Definitions 14-16, Propositions 11-12). *)
  let r = Corechase.Robust.of_derivation d in
  (match Corechase.Robust.check_invariants r with
  | Ok () -> Fmt.pr "Robust sequence invariants: all hold.@."
  | Error m -> Fmt.pr "Robust sequence PROBLEM: %s@." m);
  let stable = Corechase.Robust.stable_aggregation r in
  Fmt.pr "Robust aggregation (stable part): %d atoms, treewidth %d@."
    (Atomset.cardinal stable) (tw stable);
  Fmt.pr "%a@.@." Atomset.pp_verbose stable;

  (* 4. Both structures decide exactly the same conjunctive queries
     (Proposition 9: finite universality suffices). *)
  let x = Term.fresh_var ~hint:"X" () and y = Term.fresh_var ~hint:"Y" () in
  let queries =
    [
      ("a ceiling exists", Kb.Query.make [ Atom.make "c" [ x ] ]);
      ( "floor with loop",
        Kb.Query.make [ Atom.make "f" [ x ]; Atom.make "h" [ x; x ] ] );
      ( "v-edge into a ceiling",
        Kb.Query.make [ Atom.make "v" [ x; y ]; Atom.make "c" [ y ] ] );
      ( "floor that is also ceiling",
        Kb.Query.make [ Atom.make "f" [ x ]; Atom.make "c" [ x ] ] );
    ]
  in
  List.iter
    (fun (name, q) ->
      Fmt.pr "  %-28s in D*: %-5b in robust D⊛: %-5b@." name
        (Corechase.Entailment.holds_in q nat)
        (Corechase.Entailment.holds_in q stable))
    queries;
  Fmt.pr "@.The staircase shows: bounded-treewidth core chase sequences do NOT@.";
  Fmt.pr "imply a bounded-treewidth universal model — but the robust@.";
  Fmt.pr "aggregation still yields a treewidth-bounded finitely universal@.";
  Fmt.pr "model, which is all CQ answering needs (Theorem 2).@."
