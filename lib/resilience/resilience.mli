(** Resilient chase execution (DESIGN.md §11).

    The paper's core chase can run forever, and chase termination is
    undecidable even for very restricted rulesets — so a long run can
    never be {e predicted}, only {e bounded}.  This library is the
    bounding layer every engine threads through:

    - a structured {!outcome} replacing the old terminated/budget
      dichotomy, so a report always says {e which} limit stopped a run;
    - a wall-clock {!Token} (deadline + cooperative cancellation),
      installed ambiently for the duration of a run and polled at the
      same instrumented sites that emit trace events — including inside
      [Hom.solve] and on the [Par] pool's workers, so a [--jobs N] run
      stops within one fan-out wave of the deadline;
    - a seeded, deterministic fault-injection harness
      ([CORECHASE_FAULTS=site:step:kind]) that raises at instrumented
      sites, driving the kill-anywhere/resume differential tests.

    The engines catch {!Interrupted}, [Stack_overflow] and
    [Out_of_memory] at their loop boundary and return the last
    consistent instance instead of crashing ({!outcome_of_exn} is that
    boundary's classifier). *)

type resource = [ `Stack_overflow | `Out_of_memory ]

(** Why a chase run stopped. *)
type outcome =
  | Fixpoint  (** no unsatisfied trigger remains: the chase terminated *)
  | Step_budget  (** [max_steps] rule applications were performed *)
  | Atom_budget  (** the instance outgrew [max_atoms] *)
  | Deadline  (** the wall-clock deadline of the run's {!Token.t} passed *)
  | Resource of resource
      (** the engine caught resource exhaustion and preserved the last
          consistent instance *)
  | Cancelled  (** the run's {!Token.t} was cancelled cooperatively *)

val terminated : outcome -> bool
(** [terminated o] iff [o = Fixpoint]. *)

val outcome_name : outcome -> string
(** Stable machine-readable id: [fixpoint], [steps], [atoms], [deadline],
    [stack_overflow], [out_of_memory], [cancelled]. *)

val outcome_of_name : string -> outcome option
(** Inverse of {!outcome_name}. *)

val pp_outcome : Format.formatter -> outcome -> unit
(** Human phrase, e.g. ["step budget exhausted"]. *)

exception Interrupted of outcome
(** Raised by {!poll} / {!Token.check} (with [Deadline] or [Cancelled])
    and by injected [deadline]/[cancel] faults.  Never carries
    [Fixpoint] or a budget outcome. *)

(** Deadline + cooperative-cancellation token for one run. *)
module Token : sig
  type t

  val create : ?deadline_s:float -> unit -> t
  (** [create ~deadline_s ()] arms a wall-clock deadline [deadline_s]
      seconds from now ([deadline_s <= 0.] is already expired); without
      [deadline_s] the token only supports cancellation. *)

  val cancel : t -> unit
  (** Thread/domain-safe; takes effect at the next poll site. *)

  val cancelled : t -> bool

  val expired : t -> bool
  (** The deadline (if any) has passed. *)

  val check : t -> unit
  (** @raise Interrupted with [Cancelled] or [Deadline] when tripped. *)
end

(** Token groups (DESIGN.md §15): a set of tokens cancellable together.
    The server registers every in-flight request's token here, so a
    drain-timeout shutdown is one {!Group.cancel_all} — safe to call
    from a signal handler (it walks the list and performs atomic
    stores, no locking, no allocation).  Registration prunes
    already-cancelled tokens, so a long-lived group stays bounded by
    the number of concurrently live requests. *)
module Group : sig
  type t

  val create : unit -> t

  val add : t -> Token.t -> unit

  val token : ?deadline_s:float -> t -> Token.t
  (** {!Token.create} + {!add} in one step. *)

  val cancel_all : t -> unit
  (** Cancel every registered token.  Lock-free: a token being
      registered concurrently with the call may be missed — callers
      that need certainty call it again once no more registrations can
      race (the server does, after its accept loop has stopped). *)

  val live : t -> int
  (** Number of registered, not-yet-cancelled tokens. *)
end

val with_task_scope : ?token:Token.t -> (unit -> 'a) -> 'a
(** [with_task_scope f] runs [f] with a domain-local token scope seeded
    with [token] (default none): within it, {!install}/{!with_token}
    write and {!ambient}/{!poll} read the scope instead of the
    process-wide cell, so concurrent {!Par.Batch} tasks each run under
    their own deadline without clobbering their siblings' (DESIGN.md
    §14).  The previous scope (usually none) is restored on exit.
    Cancelling the seeded token still reaches the task — the scope
    holds the same [Token.t] — but tokens installed process-wide
    {e after} scope entry do not. *)

val install : Token.t option -> unit
(** Set the ambient token read by {!poll}.  Engines install their token
    for the duration of a run ({!with_token}); pool workers read the
    same ambient cell, which is how a deadline reaches every domain.
    Inside {!with_task_scope}, targets the domain-local scope instead. *)

val ambient : unit -> Token.t option

val with_token : Token.t option -> (unit -> 'a) -> 'a
(** [with_token t f] installs [t] (a [None] leaves the current token in
    place), runs [f], and restores the previous ambient token — also on
    exceptions. *)

val poll : unit -> unit
(** Check the ambient token, if any.  The no-token path is one atomic
    read and a branch — cheap enough for trace-event sites; very hot
    loops ([Hom.solve]'s search nodes) decimate their polls locally.
    @raise Interrupted when the ambient token is tripped. *)

val outcome_of_exn : exn -> outcome option
(** The engine-boundary classifier: [Interrupted o ↦ Some o],
    [Stack_overflow ↦ Some (Resource `Stack_overflow)],
    [Out_of_memory ↦ Some (Resource `Out_of_memory)], anything else
    [None] (re-raise it). *)

val record : engine:string -> step:int -> outcome -> unit
(** Observability hook called once by an engine when a run stops for a
    non-fixpoint, non-budget reason: bumps the [resilience.*] counters
    and emits a [Deadline_hit] trace event for [Deadline]. *)

(** Deterministic fault injection (DESIGN.md §11).

    A spec is a comma-separated list of [site:step:kind] triples: raise
    the [kind] fault at the [step]-th hit (1-based, counted process-wide
    and atomically) of the named instrumented site.  Sites: [round]
    (engine round start), [step] (before a trigger application), [hom]
    ([Hom.solve] entry), [fold] (core fold search), [par] (pool
    fan-out), [egd] (EGD saturation step), [wal] (between a WAL frame's
    write and its fsync — the mid-fsync kill, DESIGN.md §16), [snap]
    (between a snapshot's temp-file write and its rename — the snapshot
    is lost, recovery falls back).  Kinds: [stack_overflow],
    [out_of_memory] (raise the real stdlib exceptions, exercising the
    same catch path as genuine exhaustion), [deadline], [cancel] (raise
    {!Interrupted}).

    [CORECHASE_FAULTS] installs a spec at startup; malformed values are
    reported on stderr and ignored (a fault harness must never take the
    process down by itself). *)
module Fault : sig
  val set_spec : string -> unit
  (** Replace the active spec; [""] clears it.
      @raise Invalid_argument on a malformed spec. *)

  val clear : unit -> unit

  val active : unit -> bool

  val hit : string -> unit
  (** Count one hit of the named site and raise if a spec matches.
      O(1) bail-out when no spec is active. *)

  val hits : string -> int
  (** Hits counted so far for the site (for tests). *)
end
