(* The wire protocol (DESIGN.md §15) as a pure codec: frames in and out
   of strings, requests in and out of payload text.  No I/O happens
   here — the daemon and the in-process loopback client both sit on top
   of exactly these functions, which is what lets the test harness prove
   the protocol without opening a socket. *)

let version = 1
let magic = "corechase"
let max_payload = 1 lsl 20

type kind = K_hello | K_req | K_ok | K_err | K_data | K_event | K_bye

let kind_name = function
  | K_hello -> "hello"
  | K_req -> "req"
  | K_ok -> "ok"
  | K_err -> "err"
  | K_data -> "data"
  | K_event -> "event"
  | K_bye -> "bye"

let kind_of_name = function
  | "hello" -> Some K_hello
  | "req" -> Some K_req
  | "ok" -> Some K_ok
  | "err" -> Some K_err
  | "data" -> Some K_data
  | "event" -> Some K_event
  | "bye" -> Some K_bye
  | _ -> None

type frame = { kind : kind; payload : string }

type error =
  | Truncated
  | Bad_magic of string
  | Bad_version of string
  | Bad_kind of string
  | Bad_length of string
  | Oversized of int
  | Bad_terminator

let error_code = function
  | Truncated -> "truncated"
  | Bad_magic _ -> "bad-magic"
  | Bad_version _ -> "bad-version"
  | Bad_kind _ -> "bad-kind"
  | Bad_length _ -> "bad-length"
  | Oversized _ -> "oversized"
  | Bad_terminator -> "bad-terminator"

let pp_error ppf = function
  | Truncated -> Fmt.string ppf "truncated frame"
  | Bad_magic s -> Fmt.pf ppf "bad magic %S" s
  | Bad_version s -> Fmt.pf ppf "bad version %S" s
  | Bad_kind s -> Fmt.pf ppf "bad frame kind %S" s
  | Bad_length s -> Fmt.pf ppf "bad length prefix %S" s
  | Oversized n -> Fmt.pf ppf "payload length %d exceeds %d" n max_payload
  | Bad_terminator -> Fmt.string ppf "payload not newline-terminated"

let encode { kind; payload } =
  if String.length payload > max_payload then
    invalid_arg "Protocol.encode: payload exceeds max_payload";
  Fmt.str "%s/%d %s %d\n%s\n" magic version (kind_name kind)
    (String.length payload) payload

(* Incremental single-frame decoder.  The invariant the fuzz layer
   leans on: [Truncated] if and only if the bytes so far are a strict
   prefix of some well-formed frame — every other malformation gets its
   own constructor, and no input raises. *)
let decode ?(pos = 0) buf =
  let len = String.length buf in
  let prefix = magic ^ "/" in
  let plen = String.length prefix in
  (* magic: compare byte by byte so a short-but-consistent buffer is
     Truncated while the first divergent byte is Bad_magic *)
  let rec check_magic i =
    if i = plen then Ok ()
    else if pos + i >= len then Error Truncated
    else if buf.[pos + i] <> prefix.[i] then
      Error (Bad_magic (String.sub buf pos (min (i + 1) (len - pos))))
    else check_magic (i + 1)
  in
  (* a token of [accept]able chars ending at [stop], at most [limit]
     long; [mk] wraps the offending text into the right error *)
  let token ~accept ~stop ~limit ~mk start =
    let rec go i =
      if i >= len then Error Truncated
      else if buf.[i] = stop then
        if i = start then Error (mk "") else Ok (String.sub buf start (i - start), i + 1)
      else if accept buf.[i] && i - start < limit then go (i + 1)
      else Error (mk (String.sub buf start (min (i - start + 1) limit)))
    in
    go start
  in
  let digit c = c >= '0' && c <= '9' in
  let alpha c = c >= 'a' && c <= 'z' in
  match check_magic 0 with
  | Error e -> Error e
  | Ok () -> (
      let p = pos + plen in
      match
        token ~accept:digit ~stop:' ' ~limit:9 ~mk:(fun s -> Bad_version s) p
      with
      | Error e -> Error e
      | Ok (v, _) when int_of_string_opt v <> Some version ->
          Error (Bad_version v)
      | Ok (_, p) -> (
          match
            token ~accept:alpha ~stop:' ' ~limit:8 ~mk:(fun s -> Bad_kind s) p
          with
          | Error e -> Error e
          | Ok (k, p) -> (
              match kind_of_name k with
              | None -> Error (Bad_kind k)
              | Some kind -> (
                  match
                    token ~accept:digit ~stop:'\n' ~limit:9
                      ~mk:(fun s -> Bad_length s)
                      p
                  with
                  | Error e -> Error e
                  | Ok (l, p) -> (
                      match int_of_string_opt l with
                      | None -> Error (Bad_length l)
                      | Some n when n > max_payload -> Error (Oversized n)
                      | Some n ->
                          if len - p < n + 1 then Error Truncated
                          else if buf.[p + n] <> '\n' then Error Bad_terminator
                          else
                            Ok
                              ( { kind; payload = String.sub buf p n },
                                p + n + 1 - pos ))))))

let decode_all buf =
  let rec go acc pos =
    if pos >= String.length buf then Ok (List.rev acc, pos)
    else
      match decode ~pos buf with
      | Ok (f, consumed) -> go (f :: acc) (pos + consumed)
      | Error Truncated -> Ok (List.rev acc, pos)
      | Error e -> Error (e, pos)
  in
  go [] 0

let hello_frame =
  { kind = K_hello; payload = Fmt.str "%s %d ready" magic version }

let data_frames text =
  let n = String.length text in
  if n <= max_payload then [ { kind = K_data; payload = text } ]
  else
    let rec chunks pos acc =
      if pos >= n then List.rev acc
      else
        let l = min max_payload (n - pos) in
        chunks (pos + l) ({ kind = K_data; payload = String.sub text pos l } :: acc)
    in
    chunks 0 []

let clamp f =
  if String.length f.payload <= max_payload then [ f ]
  else
    match f.kind with
    | K_data -> data_frames f.payload
    | _ ->
        let marker = " [truncated]" in
        let keep = max_payload - String.length marker in
        [ { f with payload = String.sub f.payload 0 keep ^ marker } ]

(* ------------------------------------------------------------------ *)
(* Requests                                                            *)

type source = From_path of string | From_text of string

type request =
  | Open of string
  | Load of { session : string; source : source }
  | Chase of {
      session : string;
      variant : Chase.variant;
      steps : int;
      atoms : int;
    }
  | Entail of { session : string; query : string }
  | Analyze of string
  | Stats of string
  | Close of string
  | Ping
  | Metrics
  | Sessions
  | Shutdown

let session_name_ok name =
  name <> ""
  && String.for_all
       (fun c ->
         (c >= 'A' && c <= 'Z')
         || (c >= 'a' && c <= 'z')
         || (c >= '0' && c <= '9')
         || c = '_' || c = '.' || c = '-')
       name

let default_steps = 500
let default_atoms = 20_000

let variant_of_name = function
  | "oblivious" -> Some Chase.Oblivious
  | "skolem" -> Some Chase.Skolem
  | "restricted" -> Some Chase.Restricted
  | "frugal" -> Some Chase.Frugal
  | "core" -> Some Chase.Core
  | _ -> None

let ( let* ) = Result.bind

let parse_session name =
  if session_name_ok name then Ok name
  else Error (Fmt.str "invalid session name %S" name)

(* commands that take exactly one word: the session name *)
let unary cmd body mk =
  let line, rest = Repl.Cmdline.split_line body in
  let _, arg = Repl.Cmdline.split line in
  if rest <> "" then Error (Fmt.str "%s takes no body" cmd)
  else
    match Repl.Cmdline.words arg with
    | [ name ] ->
        let* name = parse_session name in
        Ok (mk name)
    | _ -> Error (Fmt.str "usage: %s <session>" cmd)

let nullary cmd body mk =
  let line, rest = Repl.Cmdline.split_line body in
  let _, arg = Repl.Cmdline.split line in
  if arg <> "" || rest <> "" then Error (Fmt.str "%s takes no arguments" cmd)
  else Ok mk

let parse_chase line =
  let _, arg = Repl.Cmdline.split line in
  match Repl.Cmdline.words arg with
  | [] -> Error "usage: CHASE <session> [variant=core] [steps=N] [atoms=N]"
  | name :: opts ->
      let* session = parse_session name in
      let kvs, pos = Repl.Cmdline.keyvals opts in
      if pos <> [] then
        Error (Fmt.str "CHASE: unexpected argument %S" (List.hd pos))
      else
        let* () =
          match
            List.find_opt
              (fun (k, _) -> not (List.mem k [ "variant"; "steps"; "atoms" ]))
              kvs
          with
          | Some (k, _) -> Error (Fmt.str "CHASE: unknown option %S" k)
          | None -> Ok ()
        in
        let* variant =
          match Repl.Cmdline.lookup "variant" kvs with
          | None -> Ok Chase.Core
          | Some v -> (
              match variant_of_name v with
              | Some v -> Ok v
              | None -> Error (Fmt.str "CHASE: unknown variant %S" v))
        in
        let budget key default =
          match Repl.Cmdline.lookup key kvs with
          | None -> Ok default
          | Some s -> (
              match int_of_string_opt s with
              | Some n when n > 0 -> Ok n
              | _ -> Error (Fmt.str "CHASE: %s must be a positive integer" key))
        in
        let* steps = budget "steps" default_steps in
        let* atoms = budget "atoms" default_atoms in
        Ok (Chase { session; variant; steps; atoms })

let parse_load body =
  let line, rest = Repl.Cmdline.split_line body in
  let _, arg = Repl.Cmdline.split line in
  let name, arg = Repl.Cmdline.split arg in
  let* session = parse_session name in
  let mode, tail = Repl.Cmdline.split arg in
  match mode with
  | "path" ->
      if rest <> "" then Error "LOAD … path takes no body"
      else if tail = "" then Error "usage: LOAD <session> path <file>"
      else Ok (Load { session; source = From_path tail })
  | "inline" ->
      if tail <> "" then Error "LOAD … inline takes its text on following lines"
      else if String.trim rest = "" then Error "LOAD … inline: empty DLGP text"
      else Ok (Load { session; source = From_text rest })
  | _ -> Error "usage: LOAD <session> path <file> | LOAD <session> inline"

let parse_entail body =
  let line, rest = Repl.Cmdline.split_line body in
  let _, arg = Repl.Cmdline.split line in
  match Repl.Cmdline.words arg with
  | [ name ] ->
      let* session = parse_session name in
      if String.trim rest = "" then Error "ENTAIL: empty query"
      else Ok (Entail { session; query = rest })
  | _ -> Error "usage: ENTAIL <session>\\n<dlgp query>"

let parse_request payload =
  let line, _ = Repl.Cmdline.split_line payload in
  let cmd, _ = Repl.Cmdline.split line in
  match String.uppercase_ascii cmd with
  | "OPEN" -> unary "OPEN" payload (fun n -> Open n)
  | "LOAD" -> parse_load payload
  | "CHASE" ->
      let line, rest = Repl.Cmdline.split_line payload in
      if rest <> "" then Error "CHASE takes no body" else parse_chase line
  | "ENTAIL" -> parse_entail payload
  | "ANALYZE" -> unary "ANALYZE" payload (fun n -> Analyze n)
  | "STATS" -> unary "STATS" payload (fun n -> Stats n)
  | "CLOSE" -> unary "CLOSE" payload (fun n -> Close n)
  | "PING" -> nullary "PING" payload Ping
  | "METRICS" -> nullary "METRICS" payload Metrics
  | "SESSIONS" -> nullary "SESSIONS" payload Sessions
  | "SHUTDOWN" -> nullary "SHUTDOWN" payload Shutdown
  | "" -> Error "empty request"
  | c -> Error (Fmt.str "unknown command %S" c)

let print_request = function
  | Open n -> "OPEN " ^ n
  | Load { session; source = From_path p } ->
      Fmt.str "LOAD %s path %s" session p
  | Load { session; source = From_text t } ->
      Fmt.str "LOAD %s inline\n%s" session t
  | Chase { session; variant; steps; atoms } ->
      Fmt.str "CHASE %s variant=%s steps=%d atoms=%d" session
        (Chase.variant_name variant) steps atoms
  | Entail { session; query } -> Fmt.str "ENTAIL %s\n%s" session query
  | Analyze n -> "ANALYZE " ^ n
  | Stats n -> "STATS " ^ n
  | Close n -> "CLOSE " ^ n
  | Ping -> "PING"
  | Metrics -> "METRICS"
  | Sessions -> "SESSIONS"
  | Shutdown -> "SHUTDOWN"

(* ------------------------------------------------------------------ *)
(* Error frames                                                        *)

type err_code =
  | Bad_request
  | Unknown_session
  | Session_exists
  | No_kb
  | Busy
  | Chase_stopped
  | Io_error
  | Shutting_down
  | Protocol_violation

let err_code_name = function
  | Bad_request -> "bad-request"
  | Unknown_session -> "unknown-session"
  | Session_exists -> "session-exists"
  | No_kb -> "no-kb"
  | Busy -> "busy"
  | Chase_stopped -> "chase-stopped"
  | Io_error -> "io-error"
  | Shutting_down -> "shutting-down"
  | Protocol_violation -> "protocol-error"

let err_code_of_name = function
  | "bad-request" -> Some Bad_request
  | "unknown-session" -> Some Unknown_session
  | "session-exists" -> Some Session_exists
  | "no-kb" -> Some No_kb
  | "busy" -> Some Busy
  | "chase-stopped" -> Some Chase_stopped
  | "io-error" -> Some Io_error
  | "shutting-down" -> Some Shutting_down
  | "protocol-error" -> Some Protocol_violation
  | _ -> None

let err_frame code msg =
  { kind = K_err; payload = Fmt.str "%s: %s" (err_code_name code) msg }

let parse_err payload =
  match String.index_opt payload ':' with
  | Some i
    when i + 1 < String.length payload
         && payload.[i + 1] = ' '
         && err_code_of_name (String.sub payload 0 i) <> None ->
      Some
        ( Option.get (err_code_of_name (String.sub payload 0 i)),
          String.sub payload (i + 2) (String.length payload - i - 2) )
  | _ -> None
