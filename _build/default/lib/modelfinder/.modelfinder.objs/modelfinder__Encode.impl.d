lib/modelfinder/encode.ml: Array Atom Atomset Fun Hashtbl Kb List Printf Rule Syntax Term
