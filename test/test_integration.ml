(* Cross-library integration tests: seeded random KBs driven through the
   whole pipeline — chase variants, derivation validation, robust
   sequences, certificates, class probes — checking the paper's invariants
   on arbitrary inputs rather than hand-picked ones. *)

open Syntax

let tiny = { Chase.Variants.max_steps = 25; max_atoms = 400 }

let kb_testable_name kb =
  Fmt.str "%d facts / %d rules" (Atomset.cardinal (Kb.facts kb))
    (List.length (Kb.rules kb))

(* ------------------------------------------------------------------ *)
(* Random KB generator sanity *)

let test_randomkb_deterministic () =
  let kb1 = Zoo.Randomkb.generate ~seed:42 Zoo.Randomkb.default in
  let kb2 = Zoo.Randomkb.generate ~seed:42 Zoo.Randomkb.default in
  Alcotest.(check bool) "same facts" true
    (Atomset.equal (Kb.facts kb1) (Kb.facts kb2));
  Alcotest.(check int) "same rule count" (List.length (Kb.rules kb1))
    (List.length (Kb.rules kb2));
  (* rule bodies/heads isomorphic (variables are fresh per call) *)
  List.iter2
    (fun r1 r2 ->
      Alcotest.(check bool) "rule bodies isomorphic" true
        (Homo.Morphism.isomorphic (Rule.body r1) (Rule.body r2)))
    (Kb.rules kb1) (Kb.rules kb2)

let test_randomkb_seeds_differ () =
  let kb1 = Zoo.Randomkb.generate ~seed:1 Zoo.Randomkb.default in
  let kb2 = Zoo.Randomkb.generate ~seed:2 Zoo.Randomkb.default in
  Alcotest.(check bool) "different seeds, different facts (very likely)" true
    (not (Atomset.equal (Kb.facts kb1) (Kb.facts kb2)))

let test_randomkb_well_formed () =
  List.iter
    (fun kb ->
      match Schema.of_kb kb with
      | Ok _ -> ()
      | Error m -> Alcotest.failf "%s: %s" (kb_testable_name kb) m)
    (Zoo.Randomkb.generate_many ~seed:7 ~count:20 Zoo.Randomkb.default)

let test_randomkb_datalog_has_no_existentials () =
  List.iter
    (fun kb ->
      List.iter
        (fun r ->
          Alcotest.(check bool) "datalog" true (Rule.is_datalog r))
        (Kb.rules kb))
    (Zoo.Randomkb.generate_many ~seed:3 ~count:10 Zoo.Randomkb.datalog)

(* ------------------------------------------------------------------ *)
(* Pipeline invariants over random KBs *)

let over_random_kbs ?(count = 12) ?(cfg = Zoo.Randomkb.default) ~seed f =
  List.iteri
    (fun i kb -> f i kb)
    (Zoo.Randomkb.generate_many ~seed ~count cfg)

let test_derivations_validate () =
  over_random_kbs ~seed:11 (fun i kb ->
      List.iter
        (fun run ->
          match Chase.Derivation.validate run.Chase.Variants.derivation with
          | Ok () -> ()
          | Error m -> Alcotest.failf "kb %d: %s" i m)
        [
          Chase.Variants.restricted ~budget:tiny kb;
          Chase.Variants.core ~budget:tiny kb;
          Chase.Variants.frugal ~budget:tiny kb;
        ])

let test_core_chase_instances_are_cores_random () =
  over_random_kbs ~seed:13 ~count:8 (fun i kb ->
      let run = Chase.Variants.core ~budget:tiny kb in
      List.iter
        (fun st ->
          Alcotest.(check bool)
            (Printf.sprintf "kb %d step %d is a core" i st.Chase.Derivation.index)
            true
            (Homo.Core.is_core st.Chase.Derivation.instance))
        (Chase.Derivation.steps run.Chase.Variants.derivation))

let test_robust_invariants_random () =
  over_random_kbs ~seed:17 ~count:10 (fun i kb ->
      let run = Chase.Variants.core ~budget:tiny kb in
      let r = Corechase.Robust.of_derivation run.Chase.Variants.derivation in
      match Corechase.Robust.check_invariants r with
      | Ok () -> ()
      | Error m -> Alcotest.failf "kb %d: %s" i m)

let test_robust_invariants_random_frugal () =
  over_random_kbs ~seed:29 ~count:8 (fun i kb ->
      let run = Chase.Variants.frugal ~budget:tiny kb in
      let r = Corechase.Robust.of_derivation run.Chase.Variants.derivation in
      match Corechase.Robust.check_invariants r with
      | Ok () -> ()
      | Error m -> Alcotest.failf "kb %d (frugal): %s" i m)

let test_terminating_variants_agree_random () =
  (* on datalog (always terminating), all Definition-1 variants produce
     hom-equivalent results *)
  over_random_kbs ~seed:19 ~count:10 ~cfg:Zoo.Randomkb.datalog (fun i kb ->
      let final v =
        let run = v kb in
        Alcotest.(check bool)
          (Printf.sprintf "kb %d terminates" i)
          true
          (run.Chase.Variants.outcome = Chase.Variants.Fixpoint);
        (Chase.Derivation.last run.Chase.Variants.derivation)
          .Chase.Derivation.instance
      in
      let rc = final (Chase.Variants.restricted ?budget:None) in
      let cc = final (Chase.Variants.core ?budget:None) in
      Alcotest.(check bool)
        (Printf.sprintf "kb %d results hom-equivalent" i)
        true
        (Homo.Morphism.hom_equivalent rc cc))

let test_datalog_fes_probe_random () =
  over_random_kbs ~seed:23 ~count:8 ~cfg:Zoo.Randomkb.datalog (fun i kb ->
      match
        Corechase.Probes.core_chase_terminates
          ~budget:{ Chase.Variants.max_steps = 2000; max_atoms = 20000 }
          kb
      with
      | Corechase.Probes.Terminates _ -> ()
      | Corechase.Probes.No_verdict _ ->
          Alcotest.failf "kb %d: datalog chase must terminate" i)

(* ------------------------------------------------------------------ *)
(* Certificates *)

let test_certificate_roundtrip () =
  let kb = Zoo.Classic.transitive_closure () in
  let x = Term.fresh_var ~hint:"X" () in
  let q =
    Kb.Query.make [ Atom.make "e" [ Term.const "a"; x ]; Atom.make "e" [ x; Term.const "d" ] ]
  in
  match Corechase.Certificate.find kb q with
  | None -> Alcotest.fail "entailed query must yield a certificate"
  | Some cert -> (
      match Corechase.Certificate.check kb q cert with
      | Ok () -> ()
      | Error m -> Alcotest.fail m)

let test_certificate_rejects_wrong_kb () =
  let kb = Zoo.Classic.transitive_closure () in
  let x = Term.fresh_var ~hint:"X" () in
  let q = Kb.Query.make [ Atom.make "e" [ Term.const "a"; x ] ] in
  match Corechase.Certificate.find kb q with
  | None -> Alcotest.fail "certificate must exist"
  | Some cert ->
      let other = Zoo.Classic.bts_not_fes () in
      Alcotest.(check bool) "rejected against another KB" true
        (Result.is_error (Corechase.Certificate.check other q cert))

let test_certificate_rejects_wrong_query () =
  let kb = Zoo.Classic.transitive_closure () in
  let x = Term.fresh_var ~hint:"X" () in
  let q = Kb.Query.make [ Atom.make "e" [ Term.const "a"; x ] ] in
  match Corechase.Certificate.find kb q with
  | None -> Alcotest.fail "certificate must exist"
  | Some cert ->
      let q' = Kb.Query.make [ Atom.make "e" [ x; Term.const "a" ] ] in
      Alcotest.(check bool) "rejected for a different query" true
        (Result.is_error (Corechase.Certificate.check kb q' cert))

let test_certificate_none_when_not_entailed () =
  let kb = Zoo.Classic.transitive_closure () in
  let q = Kb.Query.make [ Atom.make "e" [ Term.const "d"; Term.const "a" ] ] in
  Alcotest.(check bool) "no certificate" true
    (Corechase.Certificate.find kb q = None)

let test_certificates_on_random_entailed_queries () =
  (* pick a fact of the chase result as a (trivially entailed) query *)
  over_random_kbs ~seed:31 ~count:8 ~cfg:Zoo.Randomkb.datalog (fun i kb ->
      let run = Chase.Variants.restricted kb in
      let final =
        (Chase.Derivation.last run.Chase.Variants.derivation)
          .Chase.Derivation.instance
      in
      match Atomset.to_list final with
      | [] -> ()
      | at :: _ -> (
          let q = Kb.Query.make [ at ] in
          match Corechase.Certificate.find kb q with
          | None -> Alcotest.failf "kb %d: fact of the result must certify" i
          | Some cert -> (
              match Corechase.Certificate.check kb q cert with
              | Ok () -> ()
              | Error m -> Alcotest.failf "kb %d: %s" i m)))

let tc name f = Alcotest.test_case name `Quick f

let suites =
  [
    ( "integration.randomkb",
      [
        tc "deterministic" test_randomkb_deterministic;
        tc "seeds differ" test_randomkb_seeds_differ;
        tc "well-formed" test_randomkb_well_formed;
        tc "datalog config" test_randomkb_datalog_has_no_existentials;
      ] );
    ( "integration.pipeline",
      [
        tc "derivations validate" test_derivations_validate;
        tc "core chase yields cores" test_core_chase_instances_are_cores_random;
        tc "robust invariants (core)" test_robust_invariants_random;
        tc "robust invariants (frugal)" test_robust_invariants_random_frugal;
        tc "terminating variants agree" test_terminating_variants_agree_random;
        tc "datalog fes probes" test_datalog_fes_probe_random;
      ] );
    ( "integration.certificates",
      [
        tc "roundtrip" test_certificate_roundtrip;
        tc "rejects wrong KB" test_certificate_rejects_wrong_kb;
        tc "rejects wrong query" test_certificate_rejects_wrong_query;
        tc "absent when not entailed" test_certificate_none_when_not_entailed;
        tc "random entailed queries" test_certificates_on_random_entailed_queries;
      ] );
  ]
