(** Treewidth toolkit (Section 4 of the paper).

    Entry module of the [treewidth] library: re-exports the submodules and
    offers atomset-level convenience functions. *)

module Graph = Graph
module Primal = Primal
module Decomposition = Decomposition
module Elimination = Elimination
module Exact = Exact
module Lowerbound = Lowerbound
module Grid = Grid
module Pathwidth = Pathwidth
module Hypergraph = Hypergraph
module Dot = Dot

open Syntax

type heuristic = Min_fill | Min_degree

(* Observability (DESIGN.md §8): every width computation on an atomset is
   counted and timed; the entry points additionally announce the result as
   a [Tw_decomposed] event (vertex count of the primal graph, width,
   whether the value is exact). *)
let m_tw = Obs.Metrics.counter "tw.computations"

let h_tw = Obs.Metrics.histogram "tw.ms"

let obs_tw ~vertices ~width ~exact =
  Obs.Metrics.incr m_tw;
  if Obs.Trace.enabled () then
    Obs.Trace.emit (Obs.Trace.Tw_decomposed { vertices; width; exact })

(** Heuristic upper bound on [tw(a)] via a greedy elimination order.
    [-1] on atomsets without terms. *)
let upper_bound ?(heuristic = Min_fill) (a : Atomset.t) : int =
  Obs.Metrics.time h_tw (fun () ->
      let p = Primal.of_atomset a in
      let order =
        match heuristic with
        | Min_fill -> Elimination.min_fill_order p.Primal.graph
        | Min_degree -> Elimination.min_degree_order p.Primal.graph
      in
      let w = Elimination.width_of_order p.Primal.graph order in
      if Obs.live () then
        obs_tw ~vertices:(Graph.vertex_count p.Primal.graph) ~width:w
          ~exact:false;
      w)

(** Sound lower bound on [tw(a)] (degeneracy/clique based). *)
let lower_bound (a : Atomset.t) : int =
  Lowerbound.best (Primal.of_atomset a).Primal.graph

(** Exact treewidth.  [None] when the atomset has more terms than
    {!Exact.max_vertices} (callers then combine {!upper_bound} and
    {!lower_bound}). *)
let exact (a : Atomset.t) : int option =
  Obs.Metrics.time h_tw (fun () ->
      let p = Primal.of_atomset a in
      if Graph.vertex_count p.Primal.graph > Exact.max_vertices then None
      else begin
        let w = Exact.treewidth p.Primal.graph in
        if Obs.live () then
          obs_tw ~vertices:(Graph.vertex_count p.Primal.graph) ~width:w
            ~exact:true;
        Some w
      end)

(** Exact when feasible, otherwise the min-fill upper bound.  The boolean
    is [true] when the value is exact. *)
let best_effort (a : Atomset.t) : int * bool =
  match exact a with
  | Some w -> (w, true)
  | None -> (upper_bound a, false)

(** A valid tree decomposition witnessing [upper_bound ~heuristic a]. *)
let decomposition ?(heuristic = Min_fill) (a : Atomset.t) : Decomposition.t =
  Obs.Metrics.time h_tw (fun () ->
      let p = Primal.of_atomset a in
      let order =
        match heuristic with
        | Min_fill -> Elimination.min_fill_order p.Primal.graph
        | Min_degree -> Elimination.min_degree_order p.Primal.graph
      in
      let d = Elimination.decomposition_of_order p order in
      if Obs.live () then
        obs_tw ~vertices:(Graph.vertex_count p.Primal.graph)
          ~width:(Decomposition.width d) ~exact:false;
      d)

(** [at_most a k]: is [tw(a) ≤ k]?  Uses cheap bounds before the exact
    computation. *)
let at_most (a : Atomset.t) (k : int) : bool =
  if upper_bound a <= k then true
  else if lower_bound a > k then false
  else
    match exact a with
    | Some w -> w <= k
    | None -> false (* conservatively unknown: report not-bounded *)
