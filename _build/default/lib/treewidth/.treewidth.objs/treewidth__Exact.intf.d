lib/treewidth/exact.mli: Graph
