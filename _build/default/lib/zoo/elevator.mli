(** The Inflating Elevator [K_v] (Definition 9, Figure 3) and its
    associated structures (Figure 4).

    The KB has a universal model of treewidth 1 ([I^v*], Definition 11),
    yet every core chase sequence for it consists of instances of
    ever-growing treewidth (Proposition 8, Corollary 1).

    Cells are addressed as [(i, j)] — column [i ≥ 0], rows
    [max(0, i-1) ≤ j ≤ 2i].  Atoms of [I^v] (Definition 10):

    - [d(X^i_j)] and [f(X^i_j)] on every cell, [c(X^i_{2i})] on tops;
    - [h(X^i_j, X^{i+1}_j)] for [j ≥ i] (row edges),
      [h(X^i_{2i}, X^{i+1}_{2i+1})] and [h(X^i_{2i}, X^{i+1}_{2i+2})]
      (the top-to-top "express" edges);
    - [v(X^i_j, X^i_{j+1})] within columns, and the vertical self-loops
      [v(X^i_j, X^i_j)] for [j ≥ i].

    {b Deviation from the published atom list.}  Definition 10 as printed
    omits the diagonal edges [h(X^i_i, X^{i+1}_{i+1})] ([i ≥ 1]).  Without
    them the listed structure is not a model of [Σ_v]: the trigger of rule
    R3 instantiated through the self-loop [v(X^i_i, X^i_i)] with
    [Y = X^{i+1}_i] requires some [Y'] with [v(X^{i+1}_i, Y')] and
    [h(X^i_i, Y')], and the only [v]-successor of the loop-less bottom cell
    [X^{i+1}_i] is [X^{i+1}_{i+1}].  A fair chase therefore derives exactly
    these diagonals, and our generator includes them (checked by the test
    ["prefix model except frontier"]).  All claims the paper makes about
    [I^v] (universality, the spine [I^v*], the growing cores, treewidth
    growth of the core chase) are unaffected — the experiments measure
    them on this completed structure. *)

open Syntax

val kb : unit -> Kb.t
(** [K_v = (F_v, Σ_v)] with
    [F_v = {c(X^0_0), d(X^0_0), h(X^0_0, X^1_0), f(X^1_0)}] and the seven
    rules R1–R7 of Figure 3. *)

type structure = {
  atoms : Atomset.t;
  term : int -> int -> Term.t option;
}

val universal_model_prefix : cols:int -> structure
(** [I^v] restricted to columns [0..n]. *)

val spine_prefix : cols:int -> structure
(** [I^v*] (Definition 11) restricted to columns [0..n]: the subset of
    [I^v] on the top cells [X^i_{2i}] only — a treewidth-1 universal model.
    [term i 0] addresses the i-th top. *)

val frontier_core : cols:int -> structure
(** A reconstruction of the growing cores [(I^v_n)] (Definition 12; the
    source text of the definition is partly garbled in extraction, see
    DESIGN.md): the spine of tops [X^i_{2i}] for [2i ≤ n] together with the
    frontier region [{X^i_j | i ≤ n+1, n ≤ j ≤ 2i}], with the
    frontier's vertical self-loops, [f]-marks above row [n] and express
    edges beyond row [n] removed.  Tests validate the two properties the
    paper states: the structure is a core (Prop 8.1) and contains a
    [⌊n/3⌋+1]-grid (Prop 8.2). *)
