lib/modelfinder/sat.ml: Array List Queue
