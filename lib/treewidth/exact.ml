let max_vertices = 62

(* Bitmask helpers *)
let popcount m =
  let rec go m acc = if m = 0 then acc else go (m land (m - 1)) (acc + 1) in
  go m 0

let iter_bits m f =
  let rec go m =
    if m <> 0 then begin
      let b = m land -m in
      (* index of lowest set bit *)
      let rec idx b i = if b = 1 then i else idx (b lsr 1) (i + 1) in
      f (idx b 0);
      go (m lxor b)
    end
  in
  go m

type state = { n : int; adj : int array }
(* adj.(v): bitmask of current neighbours among alive vertices; dead
   vertices keep stale entries which are masked with [alive] on use. *)

let state_of_graph g =
  let n = Graph.vertex_count g in
  if n > max_vertices then
    invalid_arg "Exact.treewidth: more than 62 vertices";
  let adj =
    Array.init n (fun v ->
        List.fold_left (fun m u -> m lor (1 lsl u)) 0 (Graph.neighbors g v))
  in
  { n; adj }

let full_mask n = if n = 0 then 0 else (1 lsl n) - 1

(* Eliminate v in place given the alive mask; returns its live degree. *)
let eliminate st alive v =
  let nb = st.adj.(v) land alive land lnot (1 lsl v) in
  iter_bits nb (fun u -> st.adj.(u) <- st.adj.(u) lor (nb land lnot (1 lsl u)));
  popcount nb

(* Min-fill upper bound on the current alive subgraph. *)
let minfill_ub st alive0 =
  let st = { st with adj = Array.copy st.adj } in
  let alive = ref alive0 in
  let width = ref (-1) in
  while !alive <> 0 do
    (* pick min-fill vertex *)
    let best = ref (-1) and best_fill = ref max_int in
    iter_bits !alive (fun v ->
        let nb = st.adj.(v) land !alive land lnot (1 lsl v) in
        let fill = ref 0 in
        iter_bits nb (fun u ->
            fill := !fill + popcount (nb land lnot st.adj.(u) land lnot (1 lsl u)));
        if !fill < !best_fill then begin
          best_fill := !fill;
          best := v
        end);
    let v = !best in
    let d = eliminate st !alive v in
    width := max !width d;
    alive := !alive land lnot (1 lsl v)
  done;
  !width

(* MMD (maximum minimum degree / degeneracy-style) lower bound on the alive
   subgraph: repeatedly delete (not eliminate) a minimum-degree vertex; the
   maximum of the minimum degrees seen is a treewidth lower bound. *)
let mmd_lb st alive0 =
  let alive = ref alive0 in
  let best = ref (-1) in
  while !alive <> 0 do
    let minv = ref (-1) and mind = ref max_int in
    iter_bits !alive (fun v ->
        let d = popcount (st.adj.(v) land !alive land lnot (1 lsl v)) in
        if d < !mind then begin
          mind := d;
          minv := v
        end);
    best := max !best !mind;
    alive := !alive land lnot (1 lsl !minv)
  done;
  !best

(* A simplicial vertex of the alive subgraph (-1 if none): its live
   neighbourhood is a clique, so it can be eliminated first without
   loss. *)
let find_simplicial st alive =
  let simplicial = ref (-1) in
  iter_bits alive (fun v ->
      if !simplicial < 0 then begin
        let nb = st.adj.(v) land alive land lnot (1 lsl v) in
        let is_clique = ref true in
        iter_bits nb (fun u ->
            if nb land lnot st.adj.(u) land lnot (1 lsl u) <> 0 then
              is_clique := false);
        if !is_clique then simplicial := v
      end);
  !simplicial

(* The B&B is exact under any schedule: the incumbent [best] is a shared
   [Atomic] that only ever decreases (CAS min), and a node is pruned only
   when [current_max >= best] — every completion of that node has width
   >= current_max >= the incumbent at prune time >= the final answer, so
   no strictly better solution is ever discarded.  With a pool active
   the root branches (one per root vertex, after peeling simplicial
   vertices) are explored as independent tasks sharing one striped,
   mutex-guarded memo table: an eliminated-set reached by two orderings
   is the same subproblem, so cross-branch sharing is what makes the
   fan-out profitable at all (private per-branch tables re-explore the
   overlap exponentially).  Sharing stays exact even though an entry is
   written at node *entry*, before its subtree completes: an entry
   [E -> m] means some task is exploring E with current_max [m]; a task
   arriving at E with current_max >= m can only reach completions of
   width >= those of the recorded exploration, which prunes strictly
   less and finishes (folding its completions into [best] via the
   monotone [improve]) before the fan-out returns.  The answer is read
   only after every task has joined. *)

(* [visit eliminated cmax] returns whether the node must be explored,
   recording the visit.  One mutex per stripe: the critical section is a
   single hash-table probe, so contention is negligible next to the
   per-node lower-bound work. *)
let stripes = 64

type shared_memo = {
  locks : Mutex.t array;
  tables : (int, int) Hashtbl.t array;
}

let shared_memo_create () =
  {
    locks = Array.init stripes (fun _ -> Mutex.create ());
    tables = Array.init stripes (fun _ -> Hashtbl.create 1024);
  }

let shared_visit sm key cmax =
  (* cheap avalanche on the mask itself; the polymorphic [Hashtbl.hash]
     measured ~2us/call here, dominating the whole node *)
  let i = (key lxor (key lsr 17)) land (stripes - 1) in
  Mutex.lock sm.locks.(i);
  let explore =
    match Hashtbl.find_opt sm.tables.(i) key with
    | Some m when m <= cmax -> false
    | _ ->
        Hashtbl.replace sm.tables.(i) key cmax;
        true
  in
  Mutex.unlock sm.locks.(i);
  explore

let seq_visit memo key cmax =
  match Hashtbl.find_opt memo key with
  | Some m when m <= cmax -> false
  | _ ->
      Hashtbl.replace memo key cmax;
      true

let treewidth g =
  let st0 = state_of_graph g in
  let n = st0.n in
  if n = 0 then -1
  else begin
    let all = full_mask n in
    let best = Atomic.make (minfill_ub { st0 with adj = Array.copy st0.adj } all) in
    let improve w =
      let rec cas () =
        let cur = Atomic.get best in
        if w < cur && not (Atomic.compare_and_set best cur w) then cas ()
      in
      cas ()
    in
    (* memo (via [visit]): eliminated-set mask -> smallest current_max
       explored with.  [scratch] holds one preallocated adjacency buffer
       per DFS depth (a child at depth d blits into scratch.(d); deeper
       levels only touch scratch.(>= d), so the parent's buffer survives
       its whole iteration) — the hot loop allocates nothing, which also
       keeps multi-domain minor-GC barriers off the critical path. *)
    let mk_scratch () = Array.init (n + 1) (fun _ -> Array.make n 0) in
    let rec go visit scratch depth st alive current_max =
      if current_max >= Atomic.get best then ()
      else if alive = 0 then improve current_max
      else if popcount alive <= current_max + 1 then
        (* any order on the rest keeps all bags within current_max *)
        improve current_max
      else begin
        let eliminated = all land lnot alive in
        if visit eliminated current_max then begin
          let lb = mmd_lb st alive in
          if max lb current_max >= Atomic.get best then ()
          else begin
            let child v =
              let adj' = scratch.(depth) in
              Array.blit st.adj 0 adj' 0 n;
              let st' = { st with adj = adj' } in
              let d = eliminate st' alive v in
              go visit scratch (depth + 1) st'
                (alive land lnot (1 lsl v))
                (max current_max d)
            in
            (* simplicial rule: eliminate a simplicial vertex for free *)
            let simplicial = find_simplicial st alive in
            if simplicial >= 0 then child simplicial
            else
              iter_bits alive (fun v ->
                  let d0 =
                    popcount (st.adj.(v) land alive land lnot (1 lsl v))
                  in
                  if max current_max d0 < Atomic.get best then child v)
          end
        end
      end
    in
    if Par.sequential () || n < 8 then
      go (seq_visit (Hashtbl.create 4096)) (mk_scratch ()) 0 st0 all (-1)
    else begin
      (* peel simplicial vertices at the root (they are forced moves and
         would serialise the fan-out), then branch in parallel *)
      let st = { st0 with adj = Array.copy st0.adj } in
      let alive = ref all and cmax = ref (-1) in
      let peeling = ref true in
      while !peeling && popcount !alive > !cmax + 1 do
        let s = find_simplicial st !alive in
        if s >= 0 then begin
          let d = eliminate st !alive s in
          cmax := max !cmax d;
          alive := !alive land lnot (1 lsl s)
        end
        else peeling := false
      done;
      if popcount !alive <= !cmax + 1 then improve !cmax
      else begin
        let branches = ref [] in
        iter_bits !alive (fun v -> branches := v :: !branches);
        let sm = shared_memo_create () in
        Par.iter ~site:"tw.branch"
          (fun v ->
            let d0 = popcount (st.adj.(v) land !alive land lnot (1 lsl v)) in
            if max !cmax d0 < Atomic.get best then begin
              (* per-task scratch: tasks on the same slot run one after
                 another, so a fresh stack per task is the simple safe
                 choice (26 small arrays; dwarfed by the subtree work) *)
              let scratch = mk_scratch () in
              let adj' = scratch.(0) in
              Array.blit st.adj 0 adj' 0 n;
              let st' = { st with adj = adj' } in
              let d = eliminate st' !alive v in
              go (shared_visit sm) scratch 1 st'
                (!alive land lnot (1 lsl v))
                (max !cmax d)
            end)
          (List.rev !branches)
      end
    end;
    Atomic.get best
  end
