lib/homo/instance.ml: Atom Atomset Int List Map String Subst Syntax Term
