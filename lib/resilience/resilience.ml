(* Resilient execution layer (DESIGN.md §11): structured outcomes, the
   deadline/cancellation token, and deterministic fault injection. *)

type resource = [ `Stack_overflow | `Out_of_memory ]

type outcome =
  | Fixpoint
  | Step_budget
  | Atom_budget
  | Deadline
  | Resource of resource
  | Cancelled

let terminated = function Fixpoint -> true | _ -> false

let outcome_name = function
  | Fixpoint -> "fixpoint"
  | Step_budget -> "steps"
  | Atom_budget -> "atoms"
  | Deadline -> "deadline"
  | Resource `Stack_overflow -> "stack_overflow"
  | Resource `Out_of_memory -> "out_of_memory"
  | Cancelled -> "cancelled"

let outcome_of_name = function
  | "fixpoint" -> Some Fixpoint
  | "steps" -> Some Step_budget
  | "atoms" -> Some Atom_budget
  | "deadline" -> Some Deadline
  | "stack_overflow" -> Some (Resource `Stack_overflow)
  | "out_of_memory" -> Some (Resource `Out_of_memory)
  | "cancelled" -> Some Cancelled
  | _ -> None

let pp_outcome ppf o =
  Format.pp_print_string ppf
    (match o with
    | Fixpoint -> "terminated (fixpoint reached)"
    | Step_budget -> "step budget exhausted"
    | Atom_budget -> "atom budget exhausted"
    | Deadline -> "deadline exceeded"
    | Resource `Stack_overflow -> "stack overflow (resource limit)"
    | Resource `Out_of_memory -> "out of memory (resource limit)"
    | Cancelled -> "cancelled")

exception Interrupted of outcome

(* ------------------------------------------------------------------ *)
(* Token: wall-clock deadline + cooperative cancellation.  Immutable
   apart from the cancellation cell, so sharing one token across the
   [Par] pool's domains is race-free by construction. *)

module Token = struct
  type t = { deadline : float; (* absolute; infinity = none *)
             cancelled : bool Atomic.t }

  let create ?deadline_s () =
    let deadline =
      match deadline_s with
      | None -> infinity
      | Some s -> Unix.gettimeofday () +. s
    in
    { deadline; cancelled = Atomic.make false }

  let cancel t = Atomic.set t.cancelled true

  let cancelled t = Atomic.get t.cancelled

  let expired t = t.deadline < infinity && Unix.gettimeofday () >= t.deadline

  let check t =
    if Atomic.get t.cancelled then raise (Interrupted Cancelled);
    if expired t then raise (Interrupted Deadline)
end

(* Token groups (DESIGN.md §15): the server registers every in-flight
   request's token in one group, so graceful shutdown is a single
   [cancel_all] — from the drain-timeout alarm, possibly inside a
   signal handler, hence no allocation on the cancel path beyond the
   list walk and mutation only through [Token.cancel] (an atomic
   store).  Registration prunes already-cancelled tokens so a
   long-lived group does not leak one token per request served. *)
module Group = struct
  type t = { mutable toks : Token.t list; mu : Mutex.t }

  let create () = { toks = []; mu = Mutex.create () }

  let add g t =
    Mutex.lock g.mu;
    g.toks <- t :: List.filter (fun t -> not (Token.cancelled t)) g.toks;
    Mutex.unlock g.mu

  let token ?deadline_s g =
    let t = Token.create ?deadline_s () in
    add g t;
    t

  let cancel_all g = List.iter Token.cancel g.toks

  let live g =
    Mutex.lock g.mu;
    g.toks <- List.filter (fun t -> not (Token.cancelled t)) g.toks;
    let n = List.length g.toks in
    Mutex.unlock g.mu;
    n
end

(* The ambient token: one cell for the whole process, read by every
   poll site (pool workers included — that is how a deadline stops a
   [--jobs N] run within one wave).  Engines install/restore around
   their run; nesting restores correctly because [with_token] saves the
   previous value. *)
let ambient_cell : Token.t option Atomic.t = Atomic.make None

(* Per-task token scope (DESIGN.md §14): inside a [Par.Batch] task the
   install/read sites below target a domain-local cell instead of the
   process-wide one, so N concurrent tasks each run under their own
   deadline without clobbering their siblings'.  Scoping by domain is
   scoping by task: a batch task runs on one domain from start to
   finish (nested fan-outs degrade to sequential).  Outside any scope
   the behaviour is exactly the PR-5 single cell — in particular a
   fan-out's pool workers still see the caller's token through it. *)
type scope = { mutable tok : Token.t option }

let scope_key : scope option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let with_task_scope ?token f =
  let saved = Domain.DLS.get scope_key in
  Domain.DLS.set scope_key (Some { tok = token });
  Fun.protect ~finally:(fun () -> Domain.DLS.set scope_key saved) f

let install t =
  match Domain.DLS.get scope_key with
  | Some s -> s.tok <- t
  | None -> Atomic.set ambient_cell t

let ambient () =
  match Domain.DLS.get scope_key with
  | Some s -> s.tok
  | None -> Atomic.get ambient_cell

let with_token t f =
  match t with
  | None -> f ()
  | Some _ ->
      let saved = ambient () in
      install t;
      Fun.protect ~finally:(fun () -> install saved) f

let poll () =
  match ambient () with None -> () | Some t -> Token.check t

let outcome_of_exn = function
  | Interrupted o -> Some o
  | Stdlib.Stack_overflow -> Some (Resource `Stack_overflow)
  | Stdlib.Out_of_memory -> Some (Resource `Out_of_memory)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* resilience.* counters + the engine-boundary observability hook. *)

let m_deadline_hits = Obs.Metrics.counter "resilience.deadline_hits"

let m_cancellations = Obs.Metrics.counter "resilience.cancellations"

let m_resource_caught = Obs.Metrics.counter "resilience.resource_caught"

let m_faults = Obs.Metrics.counter "resilience.faults_injected"

let record ~engine ~step o =
  match o with
  | Deadline ->
      Obs.Metrics.incr m_deadline_hits;
      if Obs.Trace.enabled () then
        Obs.Trace.emit (Obs.Trace.Deadline_hit { engine; step })
  | Cancelled -> Obs.Metrics.incr m_cancellations
  | Resource _ -> Obs.Metrics.incr m_resource_caught
  | Fixpoint | Step_budget | Atom_budget -> ()

(* ------------------------------------------------------------------ *)
(* Fault injection.  The spec list is tiny (a handful of triples), so a
   hit scans it linearly; per-fault hit counters are atomic because
   sites like [hom]/[par] are exercised from pool workers. *)

module Fault = struct
  type kind = K_stack | K_heap | K_deadline | K_cancel

  type fault = {
    site : string;
    step : int;  (** raise at the [step]-th hit, 1-based *)
    kind : kind;
    count : int Atomic.t;
  }

  (* Active faults plus a process-wide per-site hit census (kept even
     for sites no fault targets, so tests can assert on coverage). *)
  let faults : fault list Atomic.t = Atomic.make []

  let census : (string, int Atomic.t) Hashtbl.t = Hashtbl.create 8

  let census_mu = Mutex.create ()

  let kind_of_string = function
    | "stack_overflow" -> Some K_stack
    | "out_of_memory" -> Some K_heap
    | "deadline" -> Some K_deadline
    | "cancel" -> Some K_cancel
    | _ -> None

  let parse spec =
    String.split_on_char ',' spec
    |> List.filter (fun s -> String.trim s <> "")
    |> List.map (fun triple ->
           match String.split_on_char ':' (String.trim triple) with
           | [ site; step; kind ] -> (
               match (int_of_string_opt step, kind_of_string kind) with
               | Some n, Some k when n >= 1 ->
                   { site; step = n; kind = k; count = Atomic.make 0 }
               | _ ->
                   invalid_arg
                     (Printf.sprintf "Resilience.Fault: bad triple %S" triple))
           | _ ->
               invalid_arg
                 (Printf.sprintf "Resilience.Fault: bad triple %S" triple))

  let set_spec spec = Atomic.set faults (parse spec)

  let clear () = Atomic.set faults []

  let active () = Atomic.get faults <> []

  let census_cell site =
    Mutex.lock census_mu;
    let cell =
      match Hashtbl.find_opt census site with
      | Some c -> c
      | None ->
          let c = Atomic.make 0 in
          Hashtbl.add census site c;
          c
    in
    Mutex.unlock census_mu;
    cell

  let raise_kind = function
    | K_stack -> raise Stdlib.Stack_overflow
    | K_heap -> raise Stdlib.Out_of_memory
    | K_deadline -> raise (Interrupted Deadline)
    | K_cancel -> raise (Interrupted Cancelled)

  let hit site =
    match Atomic.get faults with
    | [] -> ()
    | fs ->
        ignore (Atomic.fetch_and_add (census_cell site) 1);
        List.iter
          (fun f ->
            if String.equal f.site site then
              let n = Atomic.fetch_and_add f.count 1 + 1 in
              if n = f.step then begin
                Obs.Metrics.incr m_faults;
                raise_kind f.kind
              end)
          fs

  let hits site =
    match Hashtbl.find_opt census site with
    | Some c -> Atomic.get c
    | None -> 0

  (* CORECHASE_FAULTS installs a spec at startup; a malformed value is
     reported and ignored — the harness must never be the crash. *)
  let () =
    match Sys.getenv_opt "CORECHASE_FAULTS" with
    | None -> ()
    | Some spec -> (
        try set_spec spec
        with Invalid_argument msg ->
          Printf.eprintf "corechase: ignoring CORECHASE_FAULTS: %s\n%!" msg)
end
