open Syntax

module SMap = Map.Make (String)
module TMap = Map.Make (Term)

module PTKey = struct
  type t = string * int * Term.t

  let compare (p1, i1, t1) (p2, i2, t2) =
    let c = String.compare p1 p2 in
    if c <> 0 then c
    else
      let c = Int.compare i1 i2 in
      if c <> 0 then c else Term.compare t1 t2
end

module PTMap = Map.Make (PTKey)
module AMap = Map.Make (Atom)

(* Generation epochs.  A single process-wide counter hands out a fresh
   epoch to every instance value whose content differs from its parent's,
   so equal generations imply equal atom sets — the property memo tables
   key on.  The converse does not hold (two independently built instances
   with the same atoms get different generations); caches keyed on
   generations can therefore only lose hits, never correctness. *)
(* Atomic: instances are built from worker domains too (scoped fold
   searches, tests hammering allocation from raw domains), and a
   duplicated epoch would alias two different contents in the hom memo —
   a correctness bug, not just a lost hit. *)
let gen_counter = Atomic.make 0

let next_gen () = Atomic.fetch_and_add gen_counter 1 + 1

let generation_counter_value () = Atomic.get gen_counter

(* Checkpoint resume restores the epoch clock monotonically: raising it
   to at least the persisted value keeps every post-resume generation
   distinct from every checkpoint-era one, so memo entries can never
   alias across the resume boundary.  Never set it down — stale memo
   entries keyed on a re-issued epoch would be a correctness bug. *)
let ensure_generation_counter_at_least n =
  let rec bump () =
    let cur = Atomic.get gen_counter in
    if n > cur && not (Atomic.compare_and_set gen_counter cur n) then bump ()
  in
  bump ()

(* A bucket caches its cardinality: selectivity comparisons in
   [best_bucket] and candidate counting in the hom search read [n]
   instead of walking [items]. *)
type bucket = { n : int; items : Atom.t list }

let bucket_empty = { n = 0; items = [] }

let bucket_add a b = { n = b.n + 1; items = a :: b.items }

(* Every bucket holds an atom at most once (keys are per position), so a
   successful removal decrements the cached cardinality by exactly one. *)
let bucket_remove a b =
  let rec rm acc = function
    | [] -> None
    | x :: rest ->
        if Atom.equal x a then Some (List.rev_append acc rest)
        else rm (x :: acc) rest
  in
  match rm [] b.items with
  | None -> b
  | Some items -> { n = b.n - 1; items }

type t = {
  atoms : Atomset.t;
  by_pred : bucket SMap.t;
  by_ppt : bucket PTMap.t;
  by_term : bucket TMap.t;  (** atoms containing a given term (anywhere) *)
  generation : int;  (** cache epoch; equal generations ⇒ equal content *)
  born : int AMap.t;  (** per-atom birth stamp: the epoch that added it *)
}

let empty =
  {
    atoms = Atomset.empty;
    by_pred = SMap.empty;
    by_ppt = PTMap.empty;
    by_term = TMap.empty;
    generation = 0;
    born = AMap.empty;
  }

let bump a = function
  | None -> Some (bucket_add a bucket_empty)
  | Some b -> Some (bucket_add a b)

let drop a = function
  | None -> None
  | Some b ->
      let b = bucket_remove a b in
      if b.n = 0 then None else Some b

let add_atom ins a =
  if Atomset.mem a ins.atoms then ins
  else
    let by_pred = SMap.update (Atom.pred a) (bump a) ins.by_pred in
    let by_ppt, _ =
      List.fold_left
        (fun (bt, i) arg ->
          (PTMap.update (Atom.pred a, i, arg) (bump a) bt, i + 1))
        (ins.by_ppt, 0) (Atom.args a)
    in
    let by_term =
      List.fold_left
        (fun bt t -> TMap.update t (bump a) bt)
        ins.by_term (Atom.term_set a)
    in
    let g = next_gen () in
    {
      atoms = Atomset.add a ins.atoms;
      by_pred;
      by_ppt;
      by_term;
      generation = g;
      born = AMap.add a g ins.born;
    }

let remove_atom ins a =
  if not (Atomset.mem a ins.atoms) then ins
  else
    let by_pred = SMap.update (Atom.pred a) (drop a) ins.by_pred in
    let by_ppt, _ =
      List.fold_left
        (fun (bt, i) arg ->
          (PTMap.update (Atom.pred a, i, arg) (drop a) bt, i + 1))
        (ins.by_ppt, 0) (Atom.args a)
    in
    let by_term =
      List.fold_left
        (fun bt t -> TMap.update t (drop a) bt)
        ins.by_term (Atom.term_set a)
    in
    {
      atoms = Atomset.remove a ins.atoms;
      by_pred;
      by_ppt;
      by_term;
      generation = next_gen ();
      born = AMap.remove a ins.born;
    }

let add_atoms ins atoms = List.fold_left add_atom ins atoms

let remove_atoms ins atoms = List.fold_left remove_atom ins atoms

let of_atomset atoms = Atomset.fold (fun a ins -> add_atom ins a) atoms empty

let apply_subst sigma ins =
  if Subst.is_empty sigma then ins
  else
    (* only atoms containing a term of the substitution's domain can be
       rewritten; the by-term buckets list exactly those *)
    let affected =
      List.fold_left
        (fun acc x ->
          match TMap.find_opt x ins.by_term with
          | None -> acc
          | Some b -> List.fold_left (fun acc a -> Atomset.add a acc) acc b.items)
        Atomset.empty (Subst.domain sigma)
    in
    (* two phases: remove every rewritten atom, then add every image.  A
       non-idempotent σ (a fold step swapping x and y, say) can map one
       rewritten atom onto another — interleaving removal with insertion
       would silently drop the latter when its own rewrite runs next. *)
    let changed =
      Atomset.filter
        (fun a -> not (Atom.equal a (Subst.apply_atom sigma a)))
        affected
    in
    let ins = Atomset.fold (fun a ins -> remove_atom ins a) changed ins in
    Atomset.fold (fun a ins -> add_atom ins (Subst.apply_atom sigma a)) changed ins

let atomset ins = ins.atoms

let generation ins = ins.generation

let born ins a = AMap.find_opt a ins.born

let atoms_since ins g =
  AMap.fold (fun a stamp acc -> if stamp > g then a :: acc else acc) ins.born []
  |> List.sort Atom.compare

let cardinal ins = Atomset.cardinal ins.atoms

let mem ins a = Atomset.mem a ins.atoms

let atoms_with_pred ins p =
  match SMap.find_opt p ins.by_pred with Some b -> b.items | None -> []

let atoms_with_pred_pos_term ins p i t =
  match PTMap.find_opt (p, i, t) ins.by_ppt with Some b -> b.items | None -> []

let atoms_with_term ins t =
  match TMap.find_opt t ins.by_term with Some b -> b.items | None -> []

(* The most selective index entry for a pattern atom: among argument
   positions whose pattern term is a constant or a σ-bound variable, the
   (pred, pos, term) bucket with the fewest atoms; otherwise the predicate
   bucket.  Comparisons use the cached cardinalities. *)
let best_bucket ins pattern sigma =
  let p = Atom.pred pattern in
  let pred_bucket =
    match SMap.find_opt p ins.by_pred with
    | Some b -> b
    | None -> bucket_empty
  in
  let best, _ =
    List.fold_left
      (fun (best, i) arg ->
        let img =
          match arg with
          | Term.Const _ -> Some arg
          | Term.Var _ -> Subst.find arg sigma
        in
        let best =
          match img with
          | None -> best
          | Some img -> (
              match PTMap.find_opt (p, i, img) ins.by_ppt with
              | None -> bucket_empty
              | Some b -> if b.n < best.n then b else best)
        in
        (best, i + 1))
      (pred_bucket, 0) (Atom.args pattern)
  in
  best

let use_indexes = ref true

let all_atoms ins = Atomset.to_list ins.atoms

let candidates ins pattern sigma =
  if !use_indexes then (best_bucket ins pattern sigma).items else all_atoms ins

let candidate_count ins pattern sigma =
  if !use_indexes then (best_bucket ins pattern sigma).n
  else Atomset.cardinal ins.atoms

let invariants_ok ins =
  let fresh = of_atomset ins.atoms in
  let norm b = List.sort Atom.compare b.items in
  let bucket_eq b1 b2 =
    b1.n = List.length b1.items
    && b1.n = b2.n
    && List.equal Atom.equal (norm b1) (norm b2)
  in
  SMap.equal bucket_eq ins.by_pred fresh.by_pred
  && PTMap.equal bucket_eq ins.by_ppt fresh.by_ppt
  && TMap.equal bucket_eq ins.by_term fresh.by_term
  && (* birth stamps cover exactly the live atoms and never postdate the
        instance's own epoch *)
  AMap.cardinal ins.born = Atomset.cardinal ins.atoms
  && AMap.for_all
       (fun a stamp -> Atomset.mem a ins.atoms && stamp <= ins.generation)
       ins.born

let pp ppf ins = Atomset.pp ppf ins.atoms
