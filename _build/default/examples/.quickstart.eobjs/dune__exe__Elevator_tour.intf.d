examples/elevator_tour.mli:
