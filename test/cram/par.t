Parallel smoke test: --jobs 4 fans work out over a domain pool while
keeping every printed result identical to the sequential run
(test_par.ml proves that property engine-by-engine; here we pin the
operator-visible artefacts — Par_fanout trace events, the par.*
counters, and the per-domain metrics table).

  $ cat > family.dlgp <<'KB'
  > parent(alice, bob).
  > parent(bob, carol).
  > [anc-base] ancestor(X, Y) :- parent(X, Y).
  > [anc-rec]  ancestor(X, Z) :- parent(X, Y), ancestor(Y, Z).
  > KB

The report lines are byte-identical to the --jobs 1 run pinned in
trace.t; the metrics table additionally shows live par.* counters and —
with more than one job — the per-domain split (each row reads
total = slot0+slot1+…).  The split itself is reproducible: batch task i
always runs on slot i mod jobs, never on whichever domain is free.
(CORECHASE_FORCE_PAR lifts the oversubscription clamp so the pinned
output is machine-independent: fan-outs run for real even when this
test executes on a 1-core runner.)

  $ CORECHASE_FORCE_PAR=1 corechase chase family.dlgp --variant core --jobs 4 --trace out.jsonl --metrics | grep -vE "tw.ms|minor_words"
  variant:    core
  outcome:    terminated (fixpoint reached)
  steps:      3
  final size: 5 atoms
  
  metrics:
    chase.discoveries                3
    chase.egd_merges                 0
    chase.instance_size              5 (peak 5)
    chase.retractions                0
    chase.rounds                     2
    chase.triggers_applied           3
    chase.triggers_enumerated        3
    core.full_fallbacks              0
    core.scoped_certified            3
    core.scoped_searches             3
    hom.backtracks                   1
    hom.memo_hits                    2
    hom.memo_misses                  4
    hom.solve_calls                  9
    par.fanouts                      4
    par.tasks                        8
    resilience.cancellations         0
    resilience.checkpoints           0
    resilience.deadline_hits         0
    resilience.faults_injected       0
    resilience.resource_caught       0
    robust.aggregations              0
    robust.steps_built               0
    tw.computations                  0
    wal.appends                      0
    wal.fsyncs                       0
    wal.replayed_records             0
    wal.torn_tails                   0
  
  metrics by domain:
    chase.discoveries                3 = 3+0
    chase.rounds                     2 = 2+0
    chase.triggers_applied           3 = 3+0
    chase.triggers_enumerated        3 = 2+1
    core.scoped_certified            3 = 3+0
    core.scoped_searches             3 = 3+0
    hom.backtracks                   1 = 1+0
    hom.memo_hits                    2 = 2+0
    hom.memo_misses                  4 = 3+1
    hom.solve_calls                  9 = 4+5
    par.fanouts                      4 = 4+0
    par.tasks                        8 = 8+0

Each fan-out emits one Par_fanout trace event on the calling domain
(worker domains never write to the trace stream; their share of the
work shows up in the per-domain counter cells above):

  $ grep par_fanout out.jsonl
  {"ev":"par_fanout","site":"trigger.enumerate","tasks":2,"jobs":4}
  {"ev":"par_fanout","site":"trigger.satcheck","tasks":2,"jobs":4}
  {"ev":"par_fanout","site":"trigger.enumerate","tasks":2,"jobs":4}
  {"ev":"par_fanout","site":"trigger.enumerate","tasks":2,"jobs":4}

The scheduling-independent totals match the sequential run exactly —
diff of the chase.* and core.* rows is empty.  (The hom.* rows are
excluded: each domain keeps its own failed-homomorphism memo, so memo
hit/miss splits legitimately differ between widths.)

  $ corechase chase family.dlgp --variant core --jobs 1 --metrics | sed '/metrics by domain/,$d' | grep -E "(chase|core)\." > seq.txt
  $ CORECHASE_FORCE_PAR=1 corechase chase family.dlgp --variant core --jobs 4 --metrics | sed '/metrics by domain/,$d' | grep -E "(chase|core)\." > par.txt
  $ diff seq.txt par.txt
