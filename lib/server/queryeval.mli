(** Shared rendering of entailment results (DESIGN.md §15).

    The batch CLI's [entail] subcommand and the server's [ENTAIL]
    handler both produce their verdict lines through this module, which
    is what makes the differential law — server session answers are
    byte-identical to batch CLI answers on the same KB — a statement
    about {e one} renderer exercised through two transports, rather
    than two renderers that happen to agree today. *)

open Syntax

(** How a result affects the CLI exit code / the server [ok] payload. *)
type severity =
  | Sev_ok  (** entailed / complete answers / consistent *)
  | Sev_not_entailed  (** exit code 1 *)
  | Sev_stopped  (** a budget stopped short of a verdict; exit code 2 *)

val worst : severity -> severity -> severity

val exit_code : severity -> int
(** [Sev_ok] ↦ 0, [Sev_not_entailed] ↦ 1, [Sev_stopped] ↦ 2 — the
    CLI's documented exit codes. *)

val severity_name : severity -> string
(** [ok] / [not-entailed] / [stopped]: the server's [ok]-frame payload
    for an ENTAIL response. *)

val verdict_line : Kb.Query.t -> Corechase.Entailment.verdict -> string * severity
(** The ["Q  ⟶  verdict"] line for a Boolean query. *)

val answers_line : Kb.Query.t -> Corechase.Entailment.answers -> string * severity
(** The ["Q  ⟶  n certain answer(s): …"] line for a query with
    answer variables ([≥n … (budget hit)] when only sound). *)

val constraints_line : Corechase.Entailment.verdict -> string * severity
(** The consistency line printed when the document has negative
    constraints ([Entailed] here means {e inconsistent}). *)
