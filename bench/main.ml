(* Benchmark & experiment-regeneration harness.

   Two parts, both run by `dune exec bench/main.exe`:

   1. Experiment regeneration — one driver per figure/table of the paper
      (F1..F5, T1; see DESIGN.md §3), printing the measured series whose
      shape the paper's artwork depicts, with pass/fail checks.

   2. Bechamel microbenchmarks — one Test.make per experiment workload
      plus the ablation benches DESIGN.md §4 calls out (hom-search
      ordering, core-fold strategy, treewidth heuristics, core-chase
      cadence).

   Environment: BENCH_SCALE (default 1) lengthens the prefixes;
   BENCH_SKIP_MICRO=1 skips part 2 (used by quick CI runs). *)

(* aliased before [open Bechamel], which has an [Analyze] of its own *)
module Router = Analyze

open Bechamel
open Bechamel.Toolkit
open Syntax

let scale =
  match Sys.getenv_opt "BENCH_SCALE" with
  | Some s -> (try max 1 (int_of_string s) with _ -> 1)
  | None -> 1

let budget steps = { Chase.Variants.max_steps = steps; max_atoms = 20_000 }

(* ------------------------------------------------------------------ *)
(* Microbenchmark workloads (prepared once, outside the timed thunks) *)

let staircase_prefix = Zoo.Staircase.universal_model_prefix ~cols:8
let staircase_instance = Homo.Instance.of_atomset staircase_prefix.Zoo.Staircase.atoms
let staircase_query = Zoo.Staircase.column staircase_prefix 3
let step4 = Zoo.Staircase.step_atomset staircase_prefix 4
let elevator_prefix = (Zoo.Elevator.universal_model_prefix ~cols:5).Zoo.Elevator.atoms

let grid4 =
  let v = Array.init 4 (fun i -> Array.init 4 (fun j ->
      Term.var_of_id ~hint:"g" (900_000 + (i * 4) + j))) in
  let atoms = ref [] in
  for i = 0 to 3 do
    for j = 0 to 3 do
      if i < 3 then atoms := Atom.make "h" [ v.(i).(j); v.(i + 1).(j) ] :: !atoms;
      if j < 3 then atoms := Atom.make "v" [ v.(i).(j); v.(i).(j + 1) ] :: !atoms
    done
  done;
  Atomset.of_list !atoms

let tc_chain_kb =
  let atom p args = Atom.make p args in
  let facts =
    List.init 40 (fun i ->
        atom "e" [ Term.const (Printf.sprintf "n%d" i);
                   Term.const (Printf.sprintf "n%d" (i + 1)) ])
  in
  let x = Term.var_of_id ~hint:"X" 910_000 and y = Term.var_of_id ~hint:"Y" 910_001
  and z = Term.var_of_id ~hint:"Z" 910_002 in
  Kb.of_lists ~facts
    ~rules:[ Rule.make ~name:"trans"
               ~body:[ atom "e" [ x; y ]; atom "e" [ y; z ] ]
               ~head:[ atom "e" [ x; z ] ] () ]

let staircase_atoms_list = Atomset.to_list staircase_prefix.Zoo.Staircase.atoms

(* a connected random graph whose exact-treewidth branch-and-bound is the
   heavy, embarrassingly-branching part of the abl:par workload (the two
   chase prefixes contribute the fan-out-per-round pattern) *)
let par_tw_graph =
  let n = 22 in
  let state = ref 0x5eed1 in
  let rand bound =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state mod bound
  in
  let v = Array.init n (fun i -> Term.var_of_id ~hint:"tw" (920_000 + i)) in
  let atoms = ref [] in
  for i = 0 to n - 2 do
    atoms := Atom.make "e" [ v.(i); v.(i + 1) ] :: !atoms
  done;
  for _ = 1 to 2 * n do
    let i = rand n and j = rand n in
    if i <> j then atoms := Atom.make "e" [ v.(i); v.(j) ] :: !atoms
  done;
  Atomset.of_list !atoms

let par_workload () =
  ignore (Chase.Variants.core ~budget:(budget 60) (Zoo.Staircase.kb ()));
  ignore (Chase.Variants.core ~budget:(budget 35) (Zoo.Elevator.kb ()));
  ignore (Treewidth.exact par_tw_graph)

let staircase_derivation_20 =
  (Chase.Variants.core ~budget:(budget 20) (Zoo.Staircase.kb ())).Chase.Variants.derivation

(* scratch WAL directories for the wal:sync-* rows; each iteration gets
   a fresh one so segment length never accumulates across runs *)
let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let wal_scratch_ctr = ref 0

let wal_journaled_run sync =
  incr wal_scratch_ctr;
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "corechase-bench-wal-%d" !wal_scratch_ctr)
  in
  rm_rf dir;
  match Storage.Wal.open_dir ~sync ~quiet:true dir with
  | Error e -> failwith e
  | Ok w ->
      Fun.protect
        ~finally:(fun () ->
          Storage.Wal.close w;
          rm_rf dir)
        (fun () ->
          let journal =
            Storage.Wal.journal w ~engine:"restricted" ~budget:(budget 20) ()
          in
          ignore
            (Chase.Variants.restricted ~budget:(budget 20) ~journal
               (Zoo.Staircase.kb ())))

(* Engine routing (DESIGN.md §13): the analyzer's own cost and the
   routed run next to each fixed engine, on certified-terminating
   families — one per certificate source: acyclicity (wa-ladder),
   instance-rank fixpoint (linear-twist, where the skolem probe
   diverges), existential-free (datalog-clique).  The routing decision
   is precomputed at setup so the auto row times only the engine the
   router picked; the analysis cost has its own row, and
   scripts/bench_compare.py --route-gate bounds auto against the best
   fixed engine. *)
let route_cases =
  List.filter
    (fun (name, _) ->
      List.mem name [ "wa-ladder-3"; "linear-twist-3"; "datalog-clique-3" ])
    (Zoo.Families.named ())

let route_tests =
  List.concat_map
    (fun (name, kb) ->
      let choice = Router.route kb in
      let b = budget 200 in
      [
        Test.make ~name:(Printf.sprintf "abl:route:analyze:%s" name)
          (Staged.stage (fun () -> ignore (Router.analyze kb)));
        Test.make ~name:(Printf.sprintf "abl:route:auto:%s" name)
          (Staged.stage (fun () -> ignore (Chase.run_engine ~budget:b choice kb)));
        Test.make ~name:(Printf.sprintf "abl:route:restricted:%s" name)
          (Staged.stage (fun () -> ignore (Chase.run ~budget:b Chase.Restricted kb)));
        Test.make ~name:(Printf.sprintf "abl:route:core:%s" name)
          (Staged.stage (fun () -> ignore (Chase.run ~budget:b Chase.Core kb)));
      ])
    route_cases

let micro_tests =
  [
    (* per-figure workloads *)
    Test.make ~name:"F2:core-chase-20-steps" (Staged.stage (fun () ->
        ignore (Chase.Variants.core ~budget:(budget 20) (Zoo.Staircase.kb ()))));
    Test.make ~name:"F2:hom C3 -> P^h_8" (Staged.stage (fun () ->
        ignore (Homo.Hom.find staircase_query staircase_instance)));
    Test.make ~name:"F2:core-of-step-S4" (Staged.stage (fun () ->
        ignore (Homo.Core.of_atomset step4)));
    Test.make ~name:"F4:exact-treewidth-elevator5" (Staged.stage (fun () ->
        ignore (Treewidth.exact elevator_prefix)));
    Test.make ~name:"F4:core-chase-elevator-25" (Staged.stage (fun () ->
        ignore (Chase.Variants.core ~budget:(budget 25) (Zoo.Elevator.kb ()))));
    Test.make ~name:"F5:robust-sequence-20" (Staged.stage (fun () ->
        ignore (Corechase.Robust.of_derivation staircase_derivation_20)));
    Test.make ~name:"F1:countermodel-sat" (Staged.stage (fun () ->
        ignore (Modelfinder.find_model_upto ~max_domain:3 (Zoo.Classic.bts_not_fes ()))));
    Test.make ~name:"tw:exact-grid-4x4" (Staged.stage (fun () ->
        ignore (Treewidth.exact grid4)));
    (* ablations (DESIGN.md §4) *)
    Test.make ~name:"abl:hom-order:greedy" (Staged.stage (fun () ->
        Homo.Hom.naive_order := false;
        ignore (Homo.Hom.count staircase_query staircase_instance)));
    Test.make ~name:"abl:hom-order:naive" (Staged.stage (fun () ->
        Homo.Hom.naive_order := true;
        ignore (Homo.Hom.count staircase_query staircase_instance);
        Homo.Hom.naive_order := false));
    Test.make ~name:"abl:index:on" (Staged.stage (fun () ->
        Homo.Instance.use_indexes := true;
        ignore (Homo.Hom.count staircase_query staircase_instance)));
    Test.make ~name:"abl:index:off" (Staged.stage (fun () ->
        Homo.Instance.use_indexes := false;
        ignore (Homo.Hom.count staircase_query staircase_instance);
        Homo.Instance.use_indexes := true));
    Test.make ~name:"abl:core:by-variable" (Staged.stage (fun () ->
        Homo.Core.strategy := Homo.Core.By_variable;
        ignore (Homo.Core.of_atomset step4)));
    Test.make ~name:"abl:core:by-atom" (Staged.stage (fun () ->
        Homo.Core.strategy := Homo.Core.By_atom;
        ignore (Homo.Core.of_atomset step4);
        Homo.Core.strategy := Homo.Core.By_variable));
    Test.make ~name:"abl:tw:min-fill" (Staged.stage (fun () ->
        ignore (Treewidth.upper_bound ~heuristic:Treewidth.Min_fill elevator_prefix)));
    Test.make ~name:"abl:tw:min-degree" (Staged.stage (fun () ->
        ignore (Treewidth.upper_bound ~heuristic:Treewidth.Min_degree elevator_prefix)));
    Test.make ~name:"abl:datalog:naive" (Staged.stage (fun () ->
        ignore (Chase.Datalog.saturate ~strategy:`Naive (Kb.rules tc_chain_kb)
                  (Kb.facts tc_chain_kb))));
    Test.make ~name:"abl:datalog:seminaive" (Staged.stage (fun () ->
        ignore (Chase.Datalog.saturate ~strategy:`Seminaive (Kb.rules tc_chain_kb)
                  (Kb.facts tc_chain_kb))));
    Test.make ~name:"abl:cadence:every-app" (Staged.stage (fun () ->
        ignore (Chase.Variants.core ~cadence:Chase.Variants.Every_application
                  ~budget:(budget 15) (Zoo.Staircase.kb ()))));
    Test.make ~name:"abl:cadence:every-round" (Staged.stage (fun () ->
        ignore (Chase.Variants.core ~cadence:Chase.Variants.Every_round
                  ~budget:(budget 15) (Zoo.Staircase.kb ()))));
    (* trigger discovery: full per-round re-enumeration vs semi-naive delta.
       The restricted chase isolates discovery cost (no core retractions);
       the instance grows to ~200 atoms so re-enumeration has real work. *)
    Test.make ~name:"abl:triggers:snapshot" (Staged.stage (fun () ->
        Chase.Trigger.discovery := Chase.Trigger.Snapshot;
        ignore
          (Chase.Variants.restricted ~budget:(budget 60) (Zoo.Staircase.kb ()));
        Chase.Trigger.discovery := Chase.Trigger.Delta));
    Test.make ~name:"abl:triggers:delta" (Staged.stage (fun () ->
        Chase.Trigger.discovery := Chase.Trigger.Delta;
        ignore
          (Chase.Variants.restricted ~budget:(budget 60) (Zoo.Staircase.kb ()))));
    (* instance maintenance: of_atomset per step vs incremental add_atoms *)
    Test.make ~name:"abl:index:rebuild" (Staged.stage (fun () ->
        ignore
          (List.fold_left
             (fun aset a ->
               let aset = Atomset.add a aset in
               ignore (Homo.Instance.of_atomset aset);
               aset)
             Atomset.empty staircase_atoms_list)));
    Test.make ~name:"abl:index:incremental" (Staged.stage (fun () ->
        ignore
          (List.fold_left
             (fun idx a -> Homo.Instance.add_atoms idx [ a ])
             Homo.Instance.empty staircase_atoms_list)));
    (* incremental core maintenance (DESIGN.md §9): delta-scoped first
       fold vs the exhaustive oracle, over the same core-chase workloads *)
    Test.make ~name:"abl:core:scoped" (Staged.stage (fun () ->
        Homo.Core.scoping := Homo.Core.Scoped;
        ignore (Chase.Variants.core ~budget:(budget 60) (Zoo.Staircase.kb ()));
        ignore (Chase.Variants.core ~budget:(budget 35) (Zoo.Elevator.kb ()))));
    Test.make ~name:"abl:core:full" (Staged.stage (fun () ->
        Homo.Core.scoping := Homo.Core.Exhaustive;
        ignore (Chase.Variants.core ~budget:(budget 60) (Zoo.Staircase.kb ()));
        ignore (Chase.Variants.core ~budget:(budget 35) (Zoo.Elevator.kb ()));
        Homo.Core.scoping := Homo.Core.Scoped));
  ]
  (* hom result memo (DESIGN.md §12): measured on snapshot-mode
     discovery, the memo's designed consumer — every round re-asks the
     satisfaction question for every trigger, and the stale-witness
     revalidation answers the repeats in O(|body|) lookups instead of
     searches.  (Delta-mode discovery asks mostly-new questions each
     round by design, so the memo's entry-retention cost there buys
     only the audit/re-check hits.)  The on/off gap is a few percent,
     smaller than the run-to-run drift of one OLS estimate on a shared
     machine — so each arm is sampled three times, interleaved so slow
     drift hits both arms alike, and the median lands under the
     canonical [abl:hom:memo:{on,off}] names (the [run_micro]
     bookkeeping below and bench_compare.py --memo-gate compare those
     medians). *)
  @ List.concat_map
      (fun rep ->
        [
          Test.make ~name:(Printf.sprintf "abl:hom:memo:on:r%d" rep)
            (Staged.stage (fun () ->
                 Homo.Hom.memo_enabled := true;
                 Chase.Trigger.discovery := Chase.Trigger.Snapshot;
                 ignore
                   (Chase.Variants.restricted ~budget:(budget 60)
                      (Zoo.Staircase.kb ()));
                 Chase.Trigger.discovery := Chase.Trigger.Delta));
          Test.make ~name:(Printf.sprintf "abl:hom:memo:off:r%d" rep)
            (Staged.stage (fun () ->
                 Homo.Hom.memo_enabled := false;
                 Chase.Trigger.discovery := Chase.Trigger.Snapshot;
                 ignore
                   (Chase.Variants.restricted ~budget:(budget 60)
                      (Zoo.Staircase.kb ()));
                 Chase.Trigger.discovery := Chase.Trigger.Delta;
                 Homo.Hom.memo_enabled := true));
        ])
      [ 1; 2; 3 ]
  @ [
    (* atom representation (DESIGN.md §12): the flat interned solver vs
       the boxed tree-walking reference on the same enumeration *)
    Test.make ~name:"abl:hom:repr:flat" (Staged.stage (fun () ->
        Homo.Hom.flat_enabled := true;
        ignore (Homo.Hom.count staircase_query staircase_instance)));
    Test.make ~name:"abl:hom:repr:boxed" (Staged.stage (fun () ->
        Homo.Hom.flat_enabled := false;
        ignore (Homo.Hom.count staircase_query staircase_instance);
        Homo.Hom.flat_enabled := true));
    (* durability overhead (DESIGN.md §16): the same restricted chase
       with every derivation step journaled into a fresh WAL directory,
       once per fsync policy.  sync-every pays one fsync per record;
       sync-none leaves flushing to the page cache.  The rows differ
       only in the policy, so their ratio is the per-record fsync cost
       the durability CI job tracks. *)
    Test.make ~name:"wal:sync-every" (Staged.stage (fun () ->
        wal_journaled_run Storage.Wal.Sync_every));
    Test.make ~name:"wal:sync-none" (Staged.stage (fun () ->
        wal_journaled_run Storage.Wal.Sync_none));
  ]
  @ route_tests
  @ [
    (* domain-pool fan-out (DESIGN.md §10): the same mixed workload —
       core-chase prefixes + exact treewidth B&B — under one job and
       four.  set_jobs is a no-op when the width is unchanged, so the
       pool persists across iterations of the same test; keep these two
       last so the widened pool never leaks into other rows. *)
    Test.make ~name:"abl:par:jobs1" (Staged.stage (fun () ->
        Corechase.Par.set_jobs 1;
        par_workload ()));
    Test.make ~name:"abl:par:jobs4" (Staged.stage (fun () ->
        Corechase.Par.set_jobs 4;
        par_workload ()));
  ]

(* BENCH_ONLY=prefix[,prefix...] restricts the timed families to rows
   whose name starts with one of the prefixes (the CI perf-regression job
   reruns only the abl:* families it compares; the scaling job passes
   "thr").  The grouped names are "corechase <name>", so prefixes match
   against the bare name. *)
let matches_only name =
  match Sys.getenv_opt "BENCH_ONLY" with
  | None | Some "" -> true
  | Some pats ->
      List.exists
        (fun p ->
          let p = String.trim p in
          String.length p > 0
          && String.length name >= String.length p
          && String.equal (String.sub name 0 (String.length p)) p)
        (String.split_on_char ',' pats)

let micro_tests = List.filter (fun t -> matches_only (Test.name t)) micro_tests

(* ------------------------------------------------------------------ *)
(* Per-workload counter snapshots (DESIGN.md §8).  Each workload runs
   once with the metrics registry enabled; its counter columns (triggers
   enumerated/applied, retractions, hom backtracks, ...) land next to the
   timing estimates in BENCH_RESULTS.json.  The runs are deterministic,
   so the columns double as a cheap cross-machine sanity check. *)

let counter_workloads =
  [
    ("staircase:core-20", fun () ->
        ignore (Chase.Variants.core ~budget:(budget 20) (Zoo.Staircase.kb ())));
    ("staircase:restricted-60", fun () ->
        ignore
          (Chase.Variants.restricted ~budget:(budget 60) (Zoo.Staircase.kb ())));
    ("elevator:core-25", fun () ->
        ignore (Chase.Variants.core ~budget:(budget 25) (Zoo.Elevator.kb ())));
    ("tc-chain:datalog", fun () ->
        ignore
          (Chase.Datalog.saturate ~strategy:`Seminaive (Kb.rules tc_chain_kb)
             (Kb.facts tc_chain_kb)));
    ("elevator:exact-tw", fun () -> ignore (Treewidth.exact elevator_prefix));
  ]

let collect_counters () =
  List.map
    (fun (name, f) ->
      Corechase.Obs.Metrics.reset ();
      Corechase.Obs.Metrics.enabled := true;
      Fun.protect
        ~finally:(fun () -> Corechase.Obs.Metrics.enabled := false)
        f;
      let counters =
        List.filter
          (fun (_, v) -> v > 0)
          (Corechase.Obs.Metrics.counters ())
      in
      (name, counters))
    counter_workloads

let run_micro () =
  if micro_tests = [] then []
  else
  let test = Test.make_grouped ~name:"corechase" ~fmt:"%s %s" micro_tests in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.4) ()
  in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] test in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> String.compare a b) rows in
  Format.printf "@.=== microbenchmarks (monotonic clock, ns/run) ===@.";
  List.iter
    (fun (name, r) ->
      match Analyze.OLS.estimates r with
      | Some [ est ] -> Format.printf "  %-44s %14.1f ns/run@." name est
      | _ -> Format.printf "  %-44s (no estimate)@." name)
    rows;
  List.filter_map
    (fun (name, r) ->
      match Analyze.OLS.estimates r with
      | Some [ est ] -> Some (name, est)
      | _ -> None)
    rows

(* Throughput curves (DESIGN.md §14): the batched server load measured
   directly — one wall-clock per width over the whole batch, median of
   three, not a bechamel OLS fit (the quantity under test is elapsed
   time of one N-task batch, not ns/iteration of a repeatable thunk).
   Rows land in BENCH_RESULTS.json as [thr:batch:jobsN] (ns for the
   batch) so scripts/bench_compare.py --scaling-gate can require
   jobs4 ≥ 1.5× jobs1 throughput on multi-core CI. *)
let run_throughput () =
  let widths =
    List.filter
      (fun j -> matches_only (Printf.sprintf "thr:batch:jobs%d" j))
      [ 1; 2; 4 ]
  in
  if widths = [] then ([], true)
  else begin
    let tasks = Throughput.mix ~scale ~count:Throughput.default_count () in
    let rows, identical =
      Throughput.curves ~reps:3 ~jobs_list:widths tasks
    in
    Format.printf "@.=== throughput (batch of %d tasks, median of 3) ===@."
      (List.length tasks);
    Throughput.pp_rows Format.std_formatter rows;
    Format.printf "  results identical across widths/reps: %s@."
      (if identical then "yes" else "NO (determinism violation)");
    let estimates =
      List.map
        (fun r ->
          ( Printf.sprintf "corechase thr:batch:jobs%d" r.Throughput.jobs,
            r.Throughput.wall_s *. 1e9 ))
        rows
    in
    (estimates, identical)
  end

(* machine-readable mirror of the tables, for CI artifacts / regression
   tracking.  Timing rows are nested under one "benchmarks" key
   ({ "benchmarks": { "<bench name>": <ns/run>, ... }, "counters": ... });
   the per-workload counter columns sit under one "counters" key.  When
   the microbenchmarks were skipped, the previous file's timing lines are
   carried over so a quick run never erases regression baselines.
   BENCH_OUT overrides the output path (the CI perf job writes a scratch
   file and diffs it against the committed baseline). *)
let out_path =
  match Sys.getenv_opt "BENCH_OUT" with
  | Some p when p <> "" -> p
  | _ -> "BENCH_RESULTS.json"

let salvaged_estimates () =
  match open_in "BENCH_RESULTS.json" with
  | exception Sys_error _ -> []
  | ic ->
      let lines = ref [] in
      let inside = ref false in
      (try
         while true do
           let l = String.trim (input_line ic) in
           if !inside then
             if String.equal l "}" || String.equal l "}," then inside := false
             else begin
               (* a `"name": <ns>,` row; the trailing comma is re-normalised
                  by the writer *)
               let l =
                 if l <> "" && l.[String.length l - 1] = ',' then
                   String.sub l 0 (String.length l - 1)
                 else l
               in
               lines := l :: !lines
             end
           else if String.equal l {|"benchmarks": {|} then inside := true
         done
       with End_of_file -> ());
      close_in ic;
      List.rev !lines

let write_results ~estimates ~counters =
  let rows =
    match estimates with
    | [] -> salvaged_estimates ()
    | _ -> List.map (fun (name, est) -> Printf.sprintf "%S: %.1f" name est) estimates
  in
  let oc = open_out out_path in
  output_string oc "{\n  \"benchmarks\": {\n";
  let n_rows = List.length rows in
  List.iteri
    (fun i row ->
      Printf.fprintf oc "    %s%s\n" row (if i = n_rows - 1 then "" else ","))
    rows;
  output_string oc "  },\n";
  output_string oc "  \"counters\": {\n";
  let n_work = List.length counters in
  List.iteri
    (fun i (workload, cols) ->
      Printf.fprintf oc "    %S: {" workload;
      List.iteri
        (fun j (cname, v) ->
          Printf.fprintf oc "%s%S: %d"
            (if j = 0 then "" else ", ")
            cname v)
        cols;
      Printf.fprintf oc "}%s\n" (if i = n_work - 1 then "" else ","))
    counters;
  output_string oc "  }\n}\n";
  close_out oc;
  Format.printf "  (written to %s)@." out_path

let () =
  Format.printf "corechase bench harness (scale=%d)@." scale;
  (* the perf-regression job (BENCH_ONLY) only needs the timed families —
     skip the figure regeneration in that mode *)
  let ok =
    match Sys.getenv_opt "BENCH_ONLY" with
    | Some p when p <> "" ->
        Format.printf "(experiments skipped: BENCH_ONLY=%s)@." p;
        true
    | _ -> Experiments.run_all ~scale Format.std_formatter
  in
  Format.printf "@.experiment regeneration: %s@."
    (if ok then "ALL PASS" else "SOME FAILED");
  let counters = collect_counters () in
  Format.printf "@.=== per-workload counters ===@.";
  List.iter
    (fun (workload, cols) ->
      Format.printf "  %s:@." workload;
      List.iter (fun (n, v) -> Format.printf "    %-32s %d@." n v) cols)
    counters;
  let skip_timed =
    match Sys.getenv_opt "BENCH_SKIP_MICRO" with
    | Some "1" ->
        Format.printf "(microbenchmarks skipped)@.";
        true
    | _ -> false
  in
  let estimates = if skip_timed then [] else run_micro () in
  (* abl:par:jobs4 runs last and leaves the pool wide; the throughput
     curves size the pool themselves, so start them from the default *)
  Corechase.Par.set_jobs 1;
  let thr_estimates, thr_identical =
    if skip_timed then ([], true) else run_throughput ()
  in
  (* medians of the interleaved memo reps land under the canonical
     names the gates compare (see the memo comment above) *)
  let median3 vs =
    let a = Array.of_list vs in
    Array.sort compare a;
    a.(Array.length a / 2)
  in
  let memo_medians =
    List.filter_map
      (fun which ->
        match
          List.filter_map
            (fun r ->
              List.assoc_opt
                (Printf.sprintf "corechase abl:hom:memo:%s:r%d" which r)
                estimates)
            [ 1; 2; 3 ]
        with
        | [] -> None
        | vs ->
            Some (Printf.sprintf "corechase abl:hom:memo:%s" which, median3 vs))
      [ "on"; "off" ]
  in
  let estimates =
    List.sort
      (fun (a, _) (b, _) -> String.compare a b)
      (estimates @ memo_medians @ thr_estimates)
  in
  write_results ~estimates ~counters;
  (* Memo bookkeeping (DESIGN.md §12): the result memo must help on its
     own bench row, not just avoid hurting — a memo:on estimate above
     memo:off means the caching regressed into pure overhead and the run
     fails loudly (scripts/bench_compare.py re-checks the committed
     file the same way).  Compared on the medians-of-3; 2% tolerance
     absorbs timer noise on runs where the two rows effectively tie. *)
  let memo_ok =
    match
      ( List.assoc_opt "corechase abl:hom:memo:on" estimates,
        List.assoc_opt "corechase abl:hom:memo:off" estimates )
    with
    | Some on, Some off ->
        let pass = on <= off *. 1.02 in
        Format.printf
          "@.memo check (medians of 3): on %.1f ns vs off %.1f ns -> %s@." on
          off
          (if pass then "PASS" else "FAIL (memo:on slower than memo:off)");
        pass
    | _ -> true
  in
  if not thr_identical then
    Format.printf "@.throughput check: FAIL (results differ across widths)@.";
  if not (ok && memo_ok && thr_identical) then exit 1
