(** CRC-32 (IEEE 802.3 / zlib polynomial) over strings, used as the
    per-record checksum of the WAL frame format (DESIGN.md §16). *)

val string : string -> int
(** Checksum of the whole string, in [\[0, 2^32)]. *)

val string_sub : string -> int -> int -> int
(** [string_sub s pos len].  @raise Invalid_argument on bad bounds. *)

val pair : string -> string -> int
(** [pair a b = string (a ^ b)] without the concatenation. *)
