(** Bounded-domain finite model finder.

    Entry module of the [modelfinder] library: searches for a finite model
    of a KB — optionally one refuting one or several conjunctive queries —
    over domains of increasing size, by SAT-solving the propositional
    grounding ({!Encode}) with the built-in DPLL solver ({!Sat}).

    In the paper's Theorem 1, the "no" semi-decision procedure checks
    satisfiability of [F ∧ Σ ∧ ¬Q] over structures of treewidth ≤ k.  We
    substitute domain-size-bounded structures (see DESIGN.md §1): finding
    such a model certifies [K ⊭ Q]; exhausting the size budget is
    inconclusive, exactly as the paper's procedure is before the right [k]
    is reached. *)

module Sat : module type of Sat

module Encode : module type of Encode

open Syntax

type model = { domain : Term.t list; atoms : Atomset.t }

val find_model :
  domain_size:int -> ?forbid:Kb.Query.t -> ?forbid_all:Kb.Query.t list ->
  Kb.t -> model option
(** Search a single domain size.
    @raise Invalid_argument when the domain cannot hold the constants. *)

val find_model_upto :
  max_domain:int -> ?forbid:Kb.Query.t -> ?forbid_all:Kb.Query.t list ->
  Kb.t -> model option
(** Search sizes [1..max_domain], smallest first (sizes below the constant
    count are skipped). *)

val is_model_of : Kb.t -> Atomset.t -> bool
(** Model checking, independent of the SAT path (validation aid). *)

val satisfies_query : Kb.Query.t -> Atomset.t -> bool
