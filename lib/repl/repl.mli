(** The interactive chase shell: a pure command interpreter (the
    [corechase-repl] binary wraps it in a stdin loop; tests drive it
    directly).

    Commands (one per line):

    {v
    load FILE            parse a DLGP file as the current KB
    kb TEXT              parse inline DLGP text as the current KB
    variant NAME         restricted | core | frugal   (resets the run)
    step [N]             apply N rule applications (default 1)
    run [N]              chase until fixpoint or N more steps (default 100)
    show                 print the current instance
    tw                   treewidth of the current instance
    summary              one line per derivation step
    robust               robust-aggregation summary of the current run
    query Q              evaluate a CQ (DLGP body syntax) on the current
                         instance and decide it against the KB
    classify             syntactic class report for the KB's rules
    reset                back to F_0
    help                 this text
    quit                 leave
    v} *)

module Cmdline : module type of Cmdline
(** Shared command parsing, also used by the server protocol
    (DESIGN.md §15). *)

type state

val initial : state

val exec : state -> string -> state * string
(** Execute one command line; returns the new state and the output text.
    Unknown commands return usage help; errors are reported in the output,
    never raised. *)

val wants_exit : state -> bool
(** [true] after a [quit] command. *)
