open Syntax

type profile = {
  outcome : Chase.Variants.outcome;
  max_rank : int;
  frontier : (int * int) list;
  steps : int;
  fixpoint : bool;
}

module AH = Hashtbl.Make (struct
  type t = Atom.t

  let equal = Atom.equal
  let hash = Atom.hash
end)

(* The restricted chase is monotone with identity simplifications, so the
   atoms produced by step i are exactly [instance_i \ instance_{i-1}] and
   every body-image atom of the trigger already carries a rank. *)
let probe ?(budget = Chase.Variants.default_budget) kb =
  let run = Chase.Variants.restricted ~budget kb in
  let d = run.Chase.Variants.derivation in
  let ranks = AH.create 256 in
  let assign atom rank = if not (AH.mem ranks atom) then AH.add ranks atom rank in
  let steps = Chase.Derivation.steps d in
  (match steps with
  | s0 :: _ -> Atomset.iter (fun atom -> assign atom 0) s0.Chase.Derivation.instance
  | [] -> ());
  let prev = ref (match steps with s0 :: _ -> s0.Chase.Derivation.instance | [] -> Atomset.empty) in
  List.iteri
    (fun i st ->
      if i > 0 then begin
        let produced = Atomset.diff st.Chase.Derivation.instance !prev in
        let body_rank =
          match st.Chase.Derivation.trigger with
          | None -> 0
          | Some tr ->
              let image =
                Subst.apply (Chase.Trigger.mapping tr)
                  (Rule.body (Chase.Trigger.rule tr))
              in
              Atomset.fold
                (fun atom acc ->
                  match AH.find_opt ranks atom with
                  | Some r -> max r acc
                  | None -> acc)
                image 0
        in
        Atomset.iter (fun atom -> assign atom (body_rank + 1)) produced;
        prev := st.Chase.Derivation.instance
      end)
    steps;
  let per_rank = Hashtbl.create 16 in
  let max_rank = ref 0 in
  AH.iter
    (fun _ r ->
      max_rank := max !max_rank r;
      Hashtbl.replace per_rank r (1 + Option.value ~default:0 (Hashtbl.find_opt per_rank r)))
    ranks;
  let frontier =
    List.filter_map
      (fun r -> Option.map (fun n -> (r, n)) (Hashtbl.find_opt per_rank r))
      (List.init (!max_rank + 1) Fun.id)
  in
  {
    outcome = run.Chase.Variants.outcome;
    max_rank = !max_rank;
    frontier;
    steps = Chase.Derivation.length d - 1;
    fixpoint = run.Chase.Variants.outcome = Chase.Variants.Fixpoint;
  }

let pp_frontier ppf frontier =
  Fmt.pf ppf "%a"
    (Fmt.list ~sep:(Fmt.any " ") (fun ppf (r, n) -> Fmt.pf ppf "r%d:%d" r n))
    frontier
