test/test_zoo.ml: Alcotest Atom Atomset Chase Fun Homo Kb List Option Printf Rule Schema Set Subst Syntax Term Treewidth Zoo
