(* Data exchange with the core chase: the classical application of cores
   (Fagin, Kolaitis, Miller, Popa).  Source-to-target tuple-generating
   dependencies are existential rules; the core chase computes the CORE
   universal solution — the smallest target instance that answers all
   certain-answer queries.

   Run with:  dune exec examples/data_exchange.exe *)

open Syntax

let source =
  {|
  % Source: employee records and a management hierarchy.
  @facts
  emp(ann, sales).
  emp(bob, sales).
  emp(cyd, dev).
  boss(ann, bob).

  @rules
  % Every employee works in some department office with some address.
  [st1] works(E, D), office(D, A) :- emp(E, D).
  % Bosses share an office with their reports.
  [st2] works(B, D), works(E, D) :- boss(B, E).
  % Departments are organisational units.
  [st3] unit(D) :- emp(E, D).
|}

let () =
  let kb =
    match Dlgp.parse_kb source with
    | Ok kb -> kb
    | Error e -> Fmt.failwith "%a" Dlgp.pp_error e
  in
  Fmt.pr "Source instance + mapping: %d facts, %d st-tgds.@.@."
    (Atomset.cardinal (Kb.facts kb))
    (List.length (Kb.rules kb));

  (* The mapping is weakly acyclic: every chase terminates. *)
  let report = Rclasses.analyze (Kb.rules kb) in
  Fmt.pr "weakly acyclic: %b  ⟹ all chase variants terminate@.@."
    report.Rclasses.weakly_acyclic;

  (* Compare the canonical (restricted-chase) solution with the core
     solution. *)
  let rc = Chase.Variants.restricted kb in
  let cc = Chase.Variants.core kb in
  let canonical =
    (Chase.Derivation.last rc.Chase.Variants.derivation).Chase.Derivation.instance
  in
  let core_solution =
    (Chase.Derivation.last cc.Chase.Variants.derivation).Chase.Derivation.instance
  in
  Fmt.pr "canonical universal solution: %d atoms@." (Atomset.cardinal canonical);
  Fmt.pr "core universal solution:      %d atoms (the unique smallest)@."
    (Atomset.cardinal core_solution);
  Fmt.pr "%a@.@." Atomset.pp core_solution;
  assert (Homo.Core.is_core core_solution);
  assert (Homo.Morphism.hom_equivalent canonical core_solution);

  (* Target equality constraints: each department has a unique address.
     The TGD+EGD chase merges the invented addresses per department. *)
  let d = Term.fresh_var ~hint:"D" () and a1 = Term.fresh_var ~hint:"A1" ()
  and a2 = Term.fresh_var ~hint:"A2" () in
  let unique_address =
    Egd.make ~name:"unique-address"
      ~body:[ Atom.make "office" [ d; a1 ]; Atom.make "office" [ d; a2 ] ]
      a1 a2
  in
  let kb_fd = Kb.with_egds [ unique_address ] kb in
  let egd_run = Chase.Variants.Egds.run kb_fd in
  let egd_solution =
    List.nth egd_run.Chase.Variants.Egds.trace
      (List.length egd_run.Chase.Variants.Egds.trace - 1)
  in
  Fmt.pr "with the unique-address FD:   %d atoms (addresses merged per dept)@.@."
    (Atomset.cardinal egd_solution);
  assert (egd_run.Chase.Variants.Egds.outcome = Chase.Variants.Egds.Terminated);

  (* Certain answers: Boolean CQs evaluated on either solution agree. *)
  let x = Term.fresh_var ~hint:"X" () and d = Term.fresh_var ~hint:"D" () in
  let queries =
    [
      ( "ann and bob share a department",
        Kb.Query.make
          [ Atom.make "works" [ Term.const "ann"; d ];
            Atom.make "works" [ Term.const "bob"; d ] ] );
      ( "cyd has an office address",
        Kb.Query.make
          [ Atom.make "works" [ Term.const "cyd"; d ];
            Atom.make "office" [ d; x ] ] );
      ( "ann works in dev",
        Kb.Query.make [ Atom.make "works" [ Term.const "ann"; Term.const "dev" ] ] );
    ]
  in
  List.iter
    (fun (name, q) ->
      let on_core = Corechase.Entailment.holds_in q core_solution in
      let on_canonical = Corechase.Entailment.holds_in q canonical in
      assert (on_core = on_canonical);
      Fmt.pr "  certain(%-34s) = %b@." name on_core)
    queries
