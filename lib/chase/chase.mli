(** Chase engines for existential rules (Sections 2–3 of the paper).

    Entry module of the [chase] library.  {!Trigger} implements triggers
    and rule application [α(I, tr)]; {!Derivation} the paper's
    Definition-1 derivations (with simplification traces and fairness
    accounting); {!Variants} the concrete engines: restricted, core,
    frugal (Definition-1 instances) and the oblivious/skolem baselines. *)

module Trigger : module type of Trigger

module Derivation : module type of Derivation

module Datalog : module type of Datalog

module Variants : module type of Variants

module Checkpoint : module type of Checkpoint

open Syntax

type variant = Oblivious | Skolem | Restricted | Frugal | Core

val variant_name : variant -> string

type report = {
  variant : variant;
  terminated : bool;  (** [outcome = Fixpoint]; kept for existing callers *)
  outcome : Resilience.outcome;
      (** why the run stopped: fixpoint, a specific budget, the
          wall-clock deadline, caught resource exhaustion, or
          cancellation (DESIGN.md §11) *)
  steps : int;  (** rule applications performed *)
  final : Atomset.t;  (** last instance computed *)
  sizes : int list;  (** instance sizes along the run, [F_0 …] *)
}

val run :
  ?budget:Variants.budget ->
  ?token:Resilience.Token.t ->
  ?resume:Variants.engine_state ->
  ?checkpoint:(Variants.engine_state -> unit) ->
  ?journal:Variants.journal ->
  variant ->
  Kb.t ->
  report
(** Run any variant under a budget and report uniformly.  For
    [Restricted], [Frugal] and [Core] the run is a Definition-1
    derivation; use {!Variants} directly to inspect it.  [token] arms a
    wall-clock deadline / cancellation; [resume]/[checkpoint] thread
    round-boundary {!Variants.engine_state} values through the
    derivation engines; [journal] receives the per-step
    {!Variants.journal_event}s (the WAL sink, DESIGN.md §16).
    @raise Invalid_argument when [resume]/[checkpoint]/[journal] is
    passed with [Oblivious] or [Skolem] (no derivation to journal). *)

type engine_choice = Engine_datalog | Engine_restricted | Engine_core
(** Routing targets for the static analyzer (DESIGN.md §13): semi-naive
    datalog saturation for full rules, the restricted chase when
    termination is certified, the core chase otherwise. *)

val engine_name : engine_choice -> string

val run_engine :
  ?budget:Variants.budget ->
  ?token:Resilience.Token.t ->
  engine_choice ->
  Kb.t ->
  report
(** Run the routed engine.  [Engine_datalog] performs semi-naive
    saturation — on an existential-free program this {e is} the restricted
    chase, so the report carries [variant = Restricted] and always ends in
    [Fixpoint]; the budget applies to the other two engines.
    @raise Invalid_argument if [Engine_datalog] is chosen for a KB with
    existential rules or EGDs. *)

val is_model_of_rules : Rule.t list -> Atomset.t -> bool
(** Every trigger of every rule is satisfied in the instance. *)

val is_model : Kb.t -> Atomset.t -> bool
(** The instance receives the facts homomorphically and satisfies every
    rule — modelhood in the paper's sense (Section 2). *)
