module ISet = Set.Make (Int)

let mmd g =
  let n = Graph.vertex_count g in
  if n = 0 then -1
  else begin
    let adj = Array.init n (fun v -> ISet.of_list (Graph.neighbors g v)) in
    let alive = ref (ISet.of_list (List.init n Fun.id)) in
    let best = ref (-1) in
    while not (ISet.is_empty !alive) do
      let v, d =
        ISet.fold
          (fun v (bv, bd) ->
            let d = ISet.cardinal (ISet.inter adj.(v) !alive) in
            if d < bd then (v, d) else (bv, bd))
          !alive (-1, max_int)
      in
      best := max !best d;
      alive := ISet.remove v !alive
    done;
    !best
  end

let greedy_clique g =
  let n = Graph.vertex_count g in
  (* grow a clique greedily from each vertex in decreasing-degree order,
     keep the best *)
  let by_degree =
    List.sort
      (fun u v -> compare (Graph.degree g v) (Graph.degree g u))
      (List.init n Fun.id)
  in
  let grow start =
    List.fold_left
      (fun clique v ->
        if v <> start && List.for_all (Graph.has_edge g v) clique then
          v :: clique
        else clique)
      [ start ] by_degree
  in
  List.fold_left
    (fun best start ->
      let c = grow start in
      if List.length c > List.length best then c else best)
    [] by_degree

let clique g =
  match greedy_clique g with [] -> -1 | c -> List.length c - 1

let best g = max (mmd g) (clique g)
