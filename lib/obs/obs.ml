module Metrics = Metrics
module Trace = Trace

let live () = !Metrics.enabled || Trace.enabled ()
