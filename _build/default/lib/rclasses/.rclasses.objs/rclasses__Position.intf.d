lib/rclasses/position.mli: Atomset Fmt Rule Syntax Term
