lib/syntax/dlgp.ml: Atom Atomset Egd Fmt Format Kb List Printf Result Rule String Term
