lib/chase/variants.mli: Atomset Derivation Egd Kb Seq Syntax Term
