open Syntax

let atom p args = Atom.make p args

(* Σ_v, Figure 3:
   R1: c(X) ∧ h(X,Y) → ∃Y'Y''. v(Y,Y') ∧ v(Y',Y'') ∧ c(Y'')
   R2: d(X) ∧ f(X) ∧ v(X,X') → ∃Y'. h(X',Y') ∧ f(Y')
   R3: v(X,X') ∧ h(X,Y) → ∃Y'. v(Y,Y') ∧ h(X',Y')
   R4: c(X) → d(X)
   R5: v(X,X') ∧ d(X') → d(X)
   R6: h(X,Y) ∧ d(Y) ∧ f(Y) → f(X) ∧ v(X,X)
   R7: c(X) ∧ h(X,Y) ∧ v(Y,Y') ∧ f(Y') → h(X,Y') *)
let rules () =
  let v ?(h = "X") () = Term.fresh_var ~hint:h () in
  let r1 =
    let x = v () and y = v ~h:"Y" () and y' = v ~h:"Y'" ()
    and y'' = v ~h:"Y''" () in
    Rule.make ~name:"Rv1"
      ~body:[ atom "c" [ x ]; atom "h" [ x; y ] ]
      ~head:[ atom "v" [ y; y' ]; atom "v" [ y'; y'' ]; atom "c" [ y'' ] ]
      ()
  in
  let r2 =
    let x = v () and x' = v ~h:"X'" () and y' = v ~h:"Y'" () in
    Rule.make ~name:"Rv2"
      ~body:[ atom "d" [ x ]; atom "f" [ x ]; atom "v" [ x; x' ] ]
      ~head:[ atom "h" [ x'; y' ]; atom "f" [ y' ] ]
      ()
  in
  let r3 =
    let x = v () and x' = v ~h:"X'" () and y = v ~h:"Y" ()
    and y' = v ~h:"Y'" () in
    Rule.make ~name:"Rv3"
      ~body:[ atom "v" [ x; x' ]; atom "h" [ x; y ] ]
      ~head:[ atom "v" [ y; y' ]; atom "h" [ x'; y' ] ]
      ()
  in
  let r4 =
    let x = v () in
    Rule.make ~name:"Rv4" ~body:[ atom "c" [ x ] ] ~head:[ atom "d" [ x ] ] ()
  in
  let r5 =
    let x = v () and x' = v ~h:"X'" () in
    Rule.make ~name:"Rv5"
      ~body:[ atom "v" [ x; x' ]; atom "d" [ x' ] ]
      ~head:[ atom "d" [ x ] ]
      ()
  in
  let r6 =
    let x = v () and y = v ~h:"Y" () in
    Rule.make ~name:"Rv6"
      ~body:[ atom "h" [ x; y ]; atom "d" [ y ]; atom "f" [ y ] ]
      ~head:[ atom "f" [ x ]; atom "v" [ x; x ] ]
      ()
  in
  let r7 =
    let x = v () and y = v ~h:"Y" () and y' = v ~h:"Y'" () in
    Rule.make ~name:"Rv7"
      ~body:
        [
          atom "c" [ x ]; atom "h" [ x; y ]; atom "v" [ y; y' ];
          atom "f" [ y' ];
        ]
      ~head:[ atom "h" [ x; y' ] ]
      ()
  in
  [ r1; r2; r3; r4; r5; r6; r7 ]

let kb () =
  let x00 = Term.fresh_var ~hint:"Xv0_0" () in
  let x10 = Term.fresh_var ~hint:"Xv1_0" () in
  Kb.make
    ~facts:
      (Atomset.of_list
         [
           atom "c" [ x00 ]; atom "d" [ x00 ]; atom "h" [ x00; x10 ];
           atom "f" [ x10 ];
         ])
    ~rules:(rules ())

type structure = {
  atoms : Atomset.t;
  term : int -> int -> Term.t option;
}

let row_lo i = max 0 (i - 1)

let row_hi i = 2 * i

(* I^v restricted to columns 0..n, with cells created column-major,
   bottom-up (the order of Proposition 6's naming scheme). *)
let universal_model_prefix ~cols:n =
  if n < 0 then invalid_arg "Elevator: cols must be ≥ 0";
  let cell : (int * int, Term.t) Hashtbl.t = Hashtbl.create 64 in
  for i = 0 to n do
    for j = row_lo i to row_hi i do
      Hashtbl.replace cell (i, j)
        (Term.fresh_var ~hint:(Printf.sprintf "Xv%d_%d" i j) ())
    done
  done;
  let t i j = Hashtbl.find_opt cell (i, j) in
  let te i j =
    match t i j with Some x -> x | None -> assert false
  in
  let atoms = ref [] in
  let add a = atoms := a :: !atoms in
  for i = 0 to n do
    for j = row_lo i to row_hi i do
      add (atom "d" [ te i j ]);
      add (atom "f" [ te i j ]);
      (* vertical edges and self-loops *)
      if j < row_hi i then add (atom "v" [ te i j; te i (j + 1) ]);
      if j >= i then add (atom "v" [ te i j; te i j ]);
      (* horizontal row edges (the target exists iff j ≥ i) *)
      if i < n && j >= i then add (atom "h" [ te i j; te (i + 1) j ])
    done;
    add (atom "c" [ te i (row_hi i) ]);
    (* express edges from the top *)
    if i < n then begin
      add (atom "h" [ te i (row_hi i); te (i + 1) ((2 * i) + 1) ]);
      add (atom "h" [ te i (row_hi i); te (i + 1) ((2 * i) + 2) ])
    end;
    (* fair-limit completion: the R3 trigger instantiated through the
       v-self-loop of X^i_i (body v(X,X) ∧ h(X, X^{i+1}_i)) can only be
       satisfied by an atom h(X^i_i, Y') with v(X^{i+1}_i, Y'), i.e. the
       diagonal h(X^i_i, X^{i+1}_{i+1}); for i = 0 this coincides with the
       first express edge.  See the .mli note. *)
    if i >= 1 && i < n then add (atom "h" [ te i i; te (i + 1) (i + 1) ])
  done;
  { atoms = Atomset.of_list !atoms; term = t }

(* I^v*: the induced substructure on the top cells X^i_{2i}. *)
let spine_prefix ~cols:n =
  if n < 0 then invalid_arg "Elevator: cols must be ≥ 0";
  let top =
    Array.init (n + 1) (fun i ->
        Term.fresh_var ~hint:(Printf.sprintf "Top%d" i) ())
  in
  let atoms = ref [] in
  let add a = atoms := a :: !atoms in
  for i = 0 to n do
    add (atom "d" [ top.(i) ]);
    add (atom "f" [ top.(i) ]);
    add (atom "c" [ top.(i) ]);
    add (atom "v" [ top.(i); top.(i) ]);
    if i < n then add (atom "h" [ top.(i); top.(i + 1) ])
  done;
  {
    atoms = Atomset.of_list !atoms;
    term = (fun i j -> if j = 0 && i >= 0 && i <= n then Some top.(i) else None);
  }

(* Reconstruction of I^v_n (Definition 12); see the .mli note. *)
let frontier_core ~cols:n =
  if n < 0 then invalid_arg "Elevator: cols must be ≥ 0";
  let full = universal_model_prefix ~cols:(n + 1) in
  let keep i j =
    (j = 2 * i && 2 * i <= n) || (i <= n + 1 && j >= n && j <= 2 * i)
  in
  let kept_terms = ref [] in
  for i = 0 to n + 1 do
    for j = row_lo i to row_hi i do
      if keep i j then
        match full.term i j with
        | Some t -> kept_terms := t :: !kept_terms
        | None -> ()
    done
  done;
  let induced = Atomset.induced !kept_terms full.atoms in
  (* locate a term's cell to apply the atom-removal conditions *)
  let coords t =
    let found = ref None in
    for i = 0 to n + 1 do
      for j = row_lo i to row_hi i do
        match full.term i j with
        | Some t' when Term.equal t t' -> found := Some (i, j)
        | _ -> ()
      done
    done;
    match !found with Some c -> c | None -> assert false
  in
  let atoms =
    Atomset.filter
      (fun a ->
        match (Atom.pred a, Atom.args a) with
        | "v", [ t1; t2 ] when Term.equal t1 t2 ->
            snd (coords t1) <= n
        | "f", [ t ] -> snd (coords t) <= n
        | "h", [ t1; t2 ] ->
            let _, j = coords t1 and _, k = coords t2 in
            not (k > j && k > n)
        | _ -> true)
      induced
  in
  {
    atoms;
    term = (fun i j -> if keep i j then full.term i j else None);
  }
