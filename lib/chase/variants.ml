open Syntax

(* Observability (DESIGN.md §8): every engine below reports through the
   same counters and emits the same typed events, labelled with an engine
   name, so the differential telemetry tests can reconcile event streams
   against [Chase.report] for each variant. *)
let m_rounds = Obs.Metrics.counter "chase.rounds"

let m_applied = Obs.Metrics.counter "chase.triggers_applied"

let m_retractions = Obs.Metrics.counter "chase.retractions"

let m_egd_merges = Obs.Metrics.counter "chase.egd_merges"

let g_size = Obs.Metrics.gauge "chase.instance_size"

let obs_round_start ~engine ~round idx =
  Obs.Metrics.incr m_rounds;
  if Obs.Trace.enabled () then
    Obs.Trace.emit
      (Obs.Trace.Round_start
         { engine; round; size = Homo.Instance.cardinal idx })

let obs_applied ~engine ~step ~rule ~produced idx =
  Obs.Metrics.incr m_applied;
  Obs.Metrics.set g_size (Homo.Instance.cardinal idx);
  if Obs.Trace.enabled () then
    Obs.Trace.emit
      (Obs.Trace.Trigger_applied
         {
           engine;
           step;
           rule = Rule.name rule;
           produced;
           size = Homo.Instance.cardinal idx;
         })

(* a nonempty simplification retracted [before - after] atoms at [step] *)
let obs_retract ~engine ~step ~before idx =
  Obs.Metrics.incr m_retractions;
  if Obs.Trace.enabled () then
    let after = Homo.Instance.cardinal idx in
    Obs.Trace.emit
      (Obs.Trace.Retract { engine; step; removed = before - after; size = after })

type budget = { max_steps : int; max_atoms : int }

let default_budget = { max_steps = 2000; max_atoms = 20_000 }

(* The structured outcome is owned by [Resilience] (the engines, the EGD
   chase and the baselines all stop for the same reasons); the equation
   keeps [Variants.Fixpoint] etc. usable without opening that library. *)
type outcome = Resilience.outcome =
  | Fixpoint
  | Step_budget
  | Atom_budget
  | Deadline
  | Resource of Resilience.resource
  | Cancelled

type run = { derivation : Derivation.t; outcome : outcome; rounds : int }

type cadence = Every_application | Every_round

(* Per-step journal events (DESIGN.md §16): the [?checkpoint] hook
   generalized to step granularity.  A sink (lib/storage's WAL) receives
   one event per durable fact about the run — σ₀, each rule application
   as a delta, each round-end re-simplification, and the completed-round
   consistent cut — in exactly the order the engine commits them, so an
   append-only log of the events replays to the engine's state at any
   prefix.  Events are emitted {e after} the corresponding [d]/[idx]
   commit; a sink that raises (injected fault, disk error) is caught at
   the same engine boundary as everything else. *)
type journal_event =
  | J_start of { sigma : Subst.t }  (** σ₀ of the start step *)
  | J_step of {
      index : int;
      pi_safe : Subst.t;
      sigma : Subst.t;
      added : Atom.t list;  (** the genuinely new atoms of the firing *)
    }
  | J_round_sigma of { index : int; sigma : Subst.t }
      (** a round-end simplification replaced step [index]'s σ *)
  | J_round of { rounds : int; steps : int; snapshot_index : int }
      (** completed-round boundary; [snapshot_index] is the derivation
          index whose instance equals the pre-round discovery snapshot *)
  | J_merge of { sigma : Subst.t }
      (** an EGD unification ({!Egds.run} only — EGD runs are journaled
          for the record but are not Definition-1 derivations, so they
          are not resumable) *)

type journal = journal_event -> unit

(* A resumable engine state: everything the round loop reads at its top.
   Captured only at {e completed-round boundaries} — mid-round the active
   trigger snapshot and its σ-traces are live, and serializing them would
   break the resumed ≡ uninterrupted invariant (DESIGN.md §11).  The
   instance index is not part of the state: it is rebuilt from the
   derivation's last element, and trigger discovery keys on the
   [snapshot] {e atomset} delta, not on index generations. *)
type engine_state = {
  state_derivation : Derivation.t;
  state_steps : int;  (** rule applications performed so far *)
  state_rounds : int;  (** completed rounds *)
  state_snapshot : Atomset.t option;
      (** the pre-round discovery snapshot, i.e. the atomset the next
          round's delta is computed against *)
}

(* The engines maintain ONE indexed instance per run, kept in lockstep
   with the last derivation element: rule applications patch it with
   [Instance.add_atoms] and simplifications with [Instance.apply_subst]
   — it is never rebuilt inside the loop.  Trigger discovery is
   delta-driven (semi-naive): each round only looks for triggers anchored
   in the atoms added or rewritten since the previous round's snapshot
   (see Trigger.discover; the full re-enumeration survives as the
   [Trigger.Snapshot]/[Trigger.Audit] oracle modes). *)

(* Round-based engine: [simplify] computes σ_i for a freshly produced
   pre-instance (receiving it also in indexed form, plus [added] — the
   produced atoms genuinely new in the instance — so core simplifiers can
   fold delta-scoped, see Homo.Core.scope); [round_end] post-processes
   the derivation when a round (one sweep over the snapshot of active
   triggers) completes, receiving the engine's index and the round's
   accumulated delta, and returning the substitution it applied to the
   last instance so the engine can patch its index. *)
let run_engine ?(engine = "chase")
    ?(round_end = fun d ~idx:_ ~fresh:_ ~added:_ -> (d, Subst.empty)) ?token
    ?resume ?checkpoint ?journal ~budget ~simplify ~start_simplification kb =
  let emit_journal ev =
    match journal with Some j -> j ev | None -> ()
  in
  let d, steps_done, rounds, prev_snapshot =
    match resume with
    | Some st ->
        ( ref st.state_derivation,
          ref st.state_steps,
          ref st.state_rounds,
          ref st.state_snapshot )
    | None ->
        ( ref (Derivation.start ?simplification:start_simplification kb),
          ref 0,
          ref 0,
          ref None )
  in
  let idx =
    ref (Homo.Instance.of_atomset (Derivation.last !d).Derivation.instance)
  in
  (match (resume, start_simplification) with
  | None, Some s when (not (Subst.is_empty s)) && Obs.live () ->
      obs_retract ~engine ~step:0 ~before:(Atomset.cardinal (Kb.facts kb)) !idx
  | _ -> ());
  let outcome = ref None in
  let rules = Kb.rules kb in
  (* The loop body commits [d]/[idx] pairwise only after both successor
     values exist, so an exception anywhere leaves the pair consistent:
     the boundary handler below then reports the last consistent instance
     instead of crashing (DESIGN.md §11). *)
  (try
     Resilience.with_token token @@ fun () ->
     (* σ₀ is durable before the first round; on resume the log already
        holds it (the sink skips the re-emission) *)
     (match resume with
     | None ->
         emit_journal
           (J_start
              {
                sigma =
                  Option.value start_simplification ~default:Subst.empty;
              })
     | Some _ -> ());
     while !outcome = None do
       Resilience.poll ();
       Resilience.Fault.hit "round";
       if Homo.Instance.cardinal !idx > budget.max_atoms then
         outcome := Some Atom_budget
       else begin
         let current = Homo.Instance.atomset !idx in
         let delta =
           Option.map (fun old -> Atomset.diff current old) !prev_snapshot
         in
         let active = Trigger.discover ?delta rules !idx in
         prev_snapshot := Some current;
         if active = [] then outcome := Some Fixpoint
         else begin
           incr rounds;
           if Obs.live () then obs_round_start ~engine ~round:!rounds !idx;
           (* apply the snapshot, re-checking satisfaction before each
              firing (the trace of the trigger, for non-monotone
              simplifications) *)
           let base_index = Derivation.length !d - 1 in
           (* the round's accumulated delta, handed to [round_end] *)
           let round_fresh = ref [] in
           let round_added = ref [] in
           List.iter
             (fun tr ->
               match !outcome with
               | Some _ -> ()
               | None ->
                   if !steps_done >= budget.max_steps then
                     outcome := Some Step_budget
                   else begin
                     let last = Derivation.last !d in
                     let trace =
                       Derivation.sigma_trace !d ~from_:base_index
                         ~to_:last.Derivation.index
                     in
                     let tr' = Trigger.rename trace tr in
                     if
                       Trigger.is_trigger_for_in tr' !idx
                       && not (Trigger.satisfied_in tr' !idx)
                     then begin
                       Resilience.poll ();
                       Resilience.Fault.hit "step";
                       let app = Trigger.apply_in tr' !idx in
                       (* the genuinely new atoms of this firing (produced
                          may re-derive existing ones): the step's delta *)
                       let added =
                         List.filter
                           (fun a -> not (Homo.Instance.mem !idx a))
                           (Atomset.to_list app.Trigger.produced)
                       in
                       let pre_idx = Homo.Instance.add_atoms !idx added in
                       let sigma = simplify pre_idx ~added app in
                       let d' =
                         Derivation.extend_applied ~validate:false !d tr' app
                           ~simplification:sigma
                       in
                       let idx2 = Homo.Instance.apply_subst sigma pre_idx in
                       d := d';
                       idx := idx2;
                       round_fresh := app.Trigger.fresh :: !round_fresh;
                       round_added := added :: !round_added;
                       incr steps_done;
                       (if journal <> None then
                          let last = Derivation.last !d in
                          emit_journal
                            (J_step
                               {
                                 index = last.Derivation.index;
                                 pi_safe = last.Derivation.pi_safe;
                                 sigma;
                                 added;
                               }));
                       if Obs.live () then begin
                         let stepi = (Derivation.last !d).Derivation.index in
                         obs_applied ~engine ~step:stepi
                           ~rule:(Trigger.rule tr')
                           ~produced:(Atomset.cardinal app.Trigger.produced)
                           !idx;
                         if not (Subst.is_empty sigma) then
                           obs_retract ~engine ~step:stepi
                             ~before:(Homo.Instance.cardinal pre_idx)
                             !idx
                       end;
                       if Homo.Instance.cardinal !idx > budget.max_atoms then
                         outcome := Some Atom_budget
                     end
                   end)
             active;
           (* round completed: let the variant post-process (e.g. retract
              the round's last application to a core) *)
           if Derivation.length !d - 1 > base_index then begin
             let d', extra =
               round_end !d ~idx:!idx
                 ~fresh:(List.concat (List.rev !round_fresh))
                 ~added:(List.concat (List.rev !round_added))
             in
             if Subst.is_empty extra then d := d'
             else begin
               let before = Homo.Instance.cardinal !idx in
               let idx2 = Homo.Instance.apply_subst extra !idx in
               d := d';
               idx := idx2;
               emit_journal
                 (J_round_sigma
                    {
                      index = (Derivation.last !d).Derivation.index;
                      sigma = extra;
                    });
               if Obs.live () then
                 obs_retract ~engine
                   ~step:(Derivation.last !d).Derivation.index
                   ~before !idx
             end
           end;
           (* A completed round is the only consistent cut this loop
              offers: every σ-trace is sealed inside [d], so the state
              below resumes exactly (DESIGN.md §11).  Partial rounds
              (budget fired above) are never checkpointed. *)
           if !outcome = None then
             emit_journal
               (J_round
                  {
                    rounds = !rounds;
                    steps = !steps_done;
                    snapshot_index = base_index;
                  });
           match checkpoint with
           | Some hook when !outcome = None ->
               hook
                 {
                   state_derivation = !d;
                   state_steps = !steps_done;
                   state_rounds = !rounds;
                   state_snapshot = !prev_snapshot;
                 }
           | _ -> ()
         end
       end
     done
   with e -> (
     match Resilience.outcome_of_exn e with
     | Some o ->
         outcome := Some o;
         Resilience.record ~engine ~step:(Derivation.length !d - 1) o
     | None -> raise e));
  {
    derivation = !d;
    outcome = (match !outcome with Some o -> o | None -> assert false);
    rounds = !rounds;
  }

let restricted ?(budget = default_budget) ?token ?resume ?checkpoint ?journal
    kb =
  run_engine ~engine:"restricted" ~budget ?token ?resume ?checkpoint ?journal
    ~simplify:(fun _ ~added:_ _ -> Subst.empty)
    ~start_simplification:None kb

let core ?(budget = default_budget) ?(cadence = Every_application)
    ?(simplify_start = true) ?token ?resume ?checkpoint ?journal kb =
  match
    (* σ_0 = retraction-to-core of the facts runs before the engine loop,
       so it needs the same token/boundary discipline: computed under the
       token, interruption classified here rather than escaping *)
    Resilience.with_token token @@ fun () ->
    (* on resume the start step is already inside the derivation *)
    if simplify_start && resume = None then
      Some (Homo.Core.retraction_to_core (Kb.facts kb))
    else None
  with
  | exception e -> (
      match Resilience.outcome_of_exn e with
      | Some o ->
          Resilience.record ~engine:"core" ~step:0 o;
          { derivation = Derivation.start kb; outcome = o; rounds = 0 }
      | None -> raise e)
  | start_simplification ->(
  (* Incremental-core invariant (DESIGN.md §9): once a retraction to a
     core has run, every later pre-instance is "last core + one delta",
     so the fold search may be delta-scoped.  Before the first retraction
     (simplify_start = false) the precondition does not hold and the
     first simplification folds with Full scope.  A resumed state was
     checkpointed at a round boundary, where both cadences leave the
     instance a core. *)
  let invariant = ref (simplify_start || resume <> None) in
  match cadence with
  | Every_application ->
      run_engine ~engine:"core" ~budget ?token ?resume ?checkpoint ?journal
        ~simplify:(fun pre_idx ~added app ->
          let scope =
            if !invariant then
              Homo.Core.Delta { fresh = app.Trigger.fresh; added }
            else Homo.Core.Full
          in
          invariant := true;
          Homo.Core.retraction_to_core_indexed ~scope pre_idx)
        ~start_simplification kb
  | Every_round ->
      (* Restricted steps within a round; the round's last application is
         re-simplified by a retraction-to-core once the round has ended
         (Deutsch–Nash–Remmel's parallel core chase, viewed as a
         Definition-1 derivation).  Within the round σ_i is the identity,
         so the closing retraction is exactly the substitution the
         engine's index needs to absorb — and the engine's index {e is}
         the round-end pre-instance, so it is folded in place with the
         round's whole delta as scope. *)
      run_engine ~engine:"core-round" ~budget ?token ?resume ?checkpoint
        ?journal
        ~simplify:(fun _ ~added:_ _ -> Subst.empty)
        ~round_end:(fun d ~idx ~fresh ~added ->
          let scope =
            if !invariant then Homo.Core.Delta { fresh; added }
            else Homo.Core.Full
          in
          invariant := true;
          let r = Homo.Core.retraction_to_core_indexed ~scope idx in
          (Derivation.replace_last_simplification ~validate:false d r, r))
        ~start_simplification kb)

(* Frugal simplification: fold the freshly created nulls of [app] back
   into the rest of the pre-instance when an endomorphism fixing every
   older term allows it.  The search seeds the homomorphism with the
   identity on all non-fresh terms, so only the fresh nulls may move.
   The engine's pre-application index is reused: each candidate target
   (the instance without one null's atoms) is derived by incremental
   removal, and folds patch the index instead of rebuilding it. *)
let frugal_simplification pre_idx ~added:_ (app : Trigger.application) =
  match app.Trigger.fresh with
  | [] -> Subst.empty
  | fresh ->
      let pre = app.Trigger.result in
      let module TS = Set.Make (Term) in
      let fresh_set = TS.of_list fresh in
      let older =
        List.filter (fun t -> not (TS.mem t fresh_set)) (Atomset.terms pre)
      in
      let identity_seed =
        List.fold_left
          (fun s t -> if Term.is_var t then Subst.add t t s else s)
          Subst.empty older
      in
      let rec fold_nulls sigma current_idx remaining =
        match remaining with
        | [] -> sigma
        | z :: rest ->
            let z' = Subst.apply_term sigma z in
            if not (Term.is_var z') || not (TS.mem z' fresh_set) then
              fold_nulls sigma current_idx rest
            else
              let current = Homo.Instance.atomset current_idx in
              let target =
                Homo.Instance.remove_atoms current_idx
                  (Homo.Instance.atoms_with_term current_idx z')
              in
              let seed =
                (* identity on everything but the fresh nulls still alive *)
                List.fold_left
                  (fun s t ->
                    if Term.is_var t && not (TS.mem t fresh_set) then
                      Subst.add t t s
                    else s)
                  identity_seed (Atomset.terms current)
              in
              (match Homo.Hom.find ~seed current target with
              | Some h ->
                  let h = Subst.restrict (Atomset.vars current) h in
                  fold_nulls (Subst.compose h sigma)
                    (Homo.Instance.apply_subst h current_idx)
                    rest
              | None -> fold_nulls sigma current_idx rest)
      in
      let sigma = fold_nulls Subst.empty pre_idx fresh in
      (* the composite folds only fresh nulls and fixes its image: a
         retraction of the pre-instance *)
      sigma

let frugal ?(budget = default_budget) ?token ?resume ?checkpoint ?journal kb =
  run_engine ~engine:"frugal" ~budget ?token ?resume ?checkpoint ?journal
    ~simplify:frugal_simplification ~start_simplification:None kb

let stream ~variant kb =
  let simplify =
    match variant with
    | `Restricted -> fun _ ~added:_ _ -> Subst.empty
    | `Core ->
        (* the stream's start instance is always simplified to a core
           (see [d0] below), so the delta precondition holds from the
           first application on *)
        fun pre_idx ~added (app : Trigger.application) ->
          Homo.Core.retraction_to_core_indexed
            ~scope:(Homo.Core.Delta { fresh = app.Trigger.fresh; added })
            pre_idx
    | `Frugal -> frugal_simplification
  in
  (* state: current derivation + its incrementally maintained index + the
     atomset at the last trigger discovery + the queue of (traced-from,
     trigger) pairs left over from the current round's snapshot *)
  let rec next (d, idx, prev_snapshot, queue) () =
    Resilience.poll ();
    match queue with
    | (base_index, tr) :: rest -> (
        let last = Derivation.last d in
        let trace =
          Derivation.sigma_trace d ~from_:base_index ~to_:last.Derivation.index
        in
        let tr' = Trigger.rename trace tr in
        if
          Trigger.is_trigger_for_in tr' idx
          && not (Trigger.satisfied_in tr' idx)
        then begin
          let app = Trigger.apply_in tr' idx in
          let added =
            List.filter
              (fun a -> not (Homo.Instance.mem idx a))
              (Atomset.to_list app.Trigger.produced)
          in
          let pre_idx = Homo.Instance.add_atoms idx added in
          let sigma = simplify pre_idx ~added app in
          let d' =
            Derivation.extend_applied ~validate:false d tr' app
              ~simplification:sigma
          in
          let idx' = Homo.Instance.apply_subst sigma pre_idx in
          if Obs.live () then begin
            let stepi = (Derivation.last d').Derivation.index in
            obs_applied ~engine:"stream" ~step:stepi ~rule:(Trigger.rule tr')
              ~produced:(Atomset.cardinal app.Trigger.produced)
              idx';
            if not (Subst.is_empty sigma) then
              obs_retract ~engine:"stream" ~step:stepi
                ~before:(Homo.Instance.cardinal pre_idx)
                idx'
          end;
          Seq.Cons (d', next (d', idx', prev_snapshot, rest))
        end
        else next (d, idx, prev_snapshot, rest) ())
    | [] ->
        (* start a new round *)
        let current = Homo.Instance.atomset idx in
        let delta =
          Option.map (fun old -> Atomset.diff current old) prev_snapshot
        in
        let active = Trigger.discover ?delta (Kb.rules kb) idx in
        if active = [] then Seq.Nil
        else begin
          if Obs.live () then
            obs_round_start ~engine:"stream"
              ~round:(1 + Derivation.length d - 1)
              idx;
          let base = Derivation.length d - 1 in
          next
            (d, idx, Some current, List.map (fun tr -> (base, tr)) active)
            ()
        end
  in
  let d0 =
    Derivation.start
      ?simplification:
        (match variant with
        | `Core -> Some (Homo.Core.retraction_to_core (Kb.facts kb))
        | _ -> None)
      kb
  in
  let idx0 =
    Homo.Instance.of_atomset (Derivation.last d0).Derivation.instance
  in
  fun () -> Seq.Cons (d0, next (d0, idx0, None, []))

module Egds = struct
  type outcome =
    | Terminated
    | Stopped of Resilience.outcome
    | Failed of Egd.t

  type run = { trace : Atomset.t list; outcome : outcome; steps : int }

  let violations_in egds indexed =
    List.concat_map
      (fun egd0 ->
        let egd = Egd.rename_apart egd0 in
        let l, r = Egd.sides egd in
        List.filter_map
          (fun pi ->
            let u = Subst.apply_term pi l and v = Subst.apply_term pi r in
            if Term.equal u v then None else Some (egd0, u, v))
          (Homo.Hom.all (Egd.body egd) indexed))
      egds

  let violations egds inst = violations_in egds (Homo.Instance.of_atomset inst)

  (* the unifier for one violation: constants are preferred as
     representatives; between variables, the <_X-smaller one survives *)
  let unifier u v =
    match (Term.is_const u, Term.is_const v) with
    | true, true -> None (* hard failure *)
    | true, false -> Some (Subst.singleton v u)
    | false, true -> Some (Subst.singleton u v)
    | false, false ->
        if Term.compare_by_rank u v <= 0 then Some (Subst.singleton v u)
        else Some (Subst.singleton u v)

  let run ?(budget = default_budget) ?(variant = `Restricted) ?token ?journal
      kb =
    let egds = Kb.egds kb in
    let trace = ref [] in
    let steps = ref 0 in
    (* [idx] is committed after every merge / application, so however the
       run stops, [!idx] is the last consistent instance (DESIGN.md §11) *)
    let idx = ref (Homo.Instance.of_atomset (Kb.facts kb)) in
    let record () = trace := Homo.Instance.atomset !idx :: !trace in
    (* on an abort, expose the mid-phase instance — unless it equals the
       last recorded phase (abort before any progress) *)
    let record_if_new () =
      let cur = Homo.Instance.atomset !idx in
      match !trace with
      | last :: _ when Atomset.equal last cur -> ()
      | _ -> trace := cur :: !trace
    in
    let exception Fail of Egd.t in
    let exception Stop_run of Resilience.outcome in
    (* Incremental-core invariant for the [`Core] variant: true exactly
       when the current instance is known to be a core.  EGD merges can
       create foldable redundancy, so every unification clears it; each
       core retraction re-establishes it. *)
    let core_inv = ref false in
    (* saturate the EGDs in place; each unification rewrites only the
       buckets of the merged term *)
    let rec egd_saturate () =
      match violations_in egds !idx with
      | [] -> ()
      | (egd, u, v) :: _ -> (
          Resilience.poll ();
          Resilience.Fault.hit "egd";
          if !steps >= budget.max_steps then raise (Stop_run Step_budget);
          incr steps;
          match unifier u v with
          | None -> raise (Fail egd)
          | Some s ->
              core_inv := false;
              let idx' = Homo.Instance.apply_subst s !idx in
              idx := idx';
              (match journal with
              | Some j -> j (J_merge { sigma = s })
              | None -> ());
              if Obs.live () then begin
                Obs.Metrics.incr m_egd_merges;
                if Obs.Trace.enabled () then
                  Obs.Trace.emit
                    (Obs.Trace.Egd_merge
                       {
                         engine = "egd";
                         step = !steps;
                         size = Homo.Instance.cardinal idx';
                       })
              end;
              egd_saturate ())
    in
    (* one TGD round on the instance (restricted-style; core retracts);
       trigger discovery is delta-driven against the previous round *)
    let prev_snapshot = ref None in
    let rounds = ref 0 in
    let tgd_round () =
      Resilience.poll ();
      let current = Homo.Instance.atomset !idx in
      let delta =
        Option.map (fun old -> Atomset.diff current old) !prev_snapshot
      in
      let active = Trigger.discover ?delta (Kb.rules kb) !idx in
      prev_snapshot := Some current;
      if active = [] then false
      else begin
        incr rounds;
        if Obs.live () then obs_round_start ~engine:"egd" ~round:!rounds !idx;
        List.iter
          (fun tr ->
            if !steps >= budget.max_steps then raise (Stop_run Step_budget);
            if
              Trigger.is_trigger_for_in tr !idx
              && not (Trigger.satisfied_in tr !idx)
            then begin
              Resilience.poll ();
              Resilience.Fault.hit "step";
              incr steps;
              let app = Trigger.apply_in tr !idx in
              if Atomset.cardinal app.Trigger.result > budget.max_atoms then
                raise (Stop_run Atom_budget);
              let added =
                List.filter
                  (fun a -> not (Homo.Instance.mem !idx a))
                  (Atomset.to_list app.Trigger.produced)
              in
              let pre_idx = Homo.Instance.add_atoms !idx added in
              let idx' =
                match variant with
                | `Restricted -> pre_idx
                | `Core ->
                    let scope =
                      if !core_inv then
                        Homo.Core.Delta { fresh = app.Trigger.fresh; added }
                      else Homo.Core.Full
                    in
                    core_inv := true;
                    Homo.Instance.apply_subst
                      (Homo.Core.retraction_to_core_indexed ~scope pre_idx)
                      pre_idx
              in
              idx := idx';
              if Obs.live () then begin
                obs_applied ~engine:"egd" ~step:!steps ~rule:(Trigger.rule tr)
                  ~produced:(Atomset.cardinal app.Trigger.produced)
                  idx';
                if Homo.Instance.cardinal idx' < Homo.Instance.cardinal pre_idx
                then
                  obs_retract ~engine:"egd" ~step:!steps
                    ~before:(Homo.Instance.cardinal pre_idx)
                    idx'
              end
            end)
          active;
        true
      end
    in
    let outcome = ref Terminated in
    (try
       Resilience.with_token token @@ fun () ->
       egd_saturate ();
       record ();
       let continue = ref true in
       while !continue do
         if tgd_round () then begin
           egd_saturate ();
           record ()
         end
         else continue := false
       done
     with
    | Fail egd -> outcome := Failed egd
    | Stop_run o ->
        Resilience.record ~engine:"egd" ~step:!steps o;
        record_if_new ();
        outcome := Stopped o
    | e -> (
        match Resilience.outcome_of_exn e with
        | Some o ->
            Resilience.record ~engine:"egd" ~step:!steps o;
            record_if_new ();
            outcome := Stopped o
        | None -> raise e));
    { trace = List.rev !trace; outcome = !outcome; steps = !steps }
end

module Baseline = struct
  type trace = {
    instances : Atomset.t list;
    terminated : bool;  (** [outcome = Fixpoint]; kept for existing callers *)
    outcome : Resilience.outcome;
    steps : int;
  }

  (* Key identifying a trigger for the oblivious chase: rule name + images
     of all universal variables; for skolem: rule name + frontier images. *)
  let trigger_key vars tr =
    let pi = Trigger.mapping tr in
    ( Rule.name (Trigger.rule tr),
      List.map
        (fun v -> Fmt.str "%a" Term.pp_debug (Subst.apply_term pi v))
        (vars (Trigger.rule tr)) )

  let run_keyed ~engine ~key ?(budget = default_budget) ?token kb =
    let seen = Hashtbl.create 64 in
    let instances = ref [ Kb.facts kb ] in
    let idx = ref (Homo.Instance.of_atomset (Kb.facts kb)) in
    let prev_snapshot = ref None in
    let steps = ref 0 in
    let rounds = ref 0 in
    let outcome = ref None in
    (try
       Resilience.with_token token @@ fun () ->
       while !outcome = None do
         Resilience.poll ();
         Resilience.Fault.hit "round";
         let current = Homo.Instance.atomset !idx in
         let delta =
           Option.map (fun old -> Atomset.diff current old) !prev_snapshot
         in
         let candidates = Trigger.discover_all ?delta (Kb.rules kb) !idx in
         prev_snapshot := Some current;
         let fresh_triggers =
           List.filter (fun tr -> not (Hashtbl.mem seen (key tr))) candidates
         in
         if fresh_triggers = [] then outcome := Some Resilience.Fixpoint
         else begin
           incr rounds;
           if Obs.live () then obs_round_start ~engine ~round:!rounds !idx;
           List.iter
             (fun tr ->
               if !outcome = None then
                 if !steps >= budget.max_steps then
                   outcome := Some Resilience.Step_budget
                 else if Homo.Instance.cardinal !idx > budget.max_atoms then
                   outcome := Some Resilience.Atom_budget
                 else if not (Hashtbl.mem seen (key tr)) then begin
                   Resilience.poll ();
                   Resilience.Fault.hit "step";
                   Hashtbl.replace seen (key tr) ();
                   let app = Trigger.apply_in tr !idx in
                   let idx' =
                     Homo.Instance.add_atoms !idx
                       (Atomset.to_list app.Trigger.produced)
                   in
                   idx := idx';
                   instances := Homo.Instance.atomset !idx :: !instances;
                   incr steps;
                   if Obs.live () then
                     obs_applied ~engine ~step:!steps ~rule:(Trigger.rule tr)
                       ~produced:(Atomset.cardinal app.Trigger.produced)
                       !idx
                 end)
             fresh_triggers
         end
       done
     with e -> (
       match Resilience.outcome_of_exn e with
       | Some o ->
           outcome := Some o;
           Resilience.record ~engine ~step:!steps o
       | None -> raise e));
    let outcome =
      match !outcome with Some o -> o | None -> assert false
    in
    {
      instances = List.rev !instances;
      terminated = Resilience.terminated outcome;
      outcome;
      steps = !steps;
    }

  let oblivious ?budget ?token kb =
    run_keyed ~engine:"oblivious" ~key:(trigger_key Rule.universal_vars)
      ?budget ?token kb

  let skolem ?budget ?token kb =
    run_keyed ~engine:"skolem" ~key:(trigger_key Rule.frontier) ?budget ?token
      kb
end
