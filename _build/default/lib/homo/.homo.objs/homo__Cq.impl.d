lib/homo/cq.ml: Atomset Core Hom Instance Kb List Printf Subst Syntax Term
