(** Datalog saturation: the existential-free fragment, where the chase is
    plain fixpoint evaluation.

    Two strategies:
    - [`Naive]: re-derive everything each round until nothing is new;
    - [`Seminaive]: classical delta-driven evaluation — each round only
      matches rule bodies that use at least one atom derived in the
      previous round (one seeded homomorphism search per (rule, body
      position, delta atom)).

    Both produce the unique minimal model of the datalog program over the
    facts; the [abl:datalog] bench measures the difference. *)

open Syntax

val saturate :
  ?strategy:[ `Naive | `Seminaive ] -> Rule.t list -> Atomset.t -> Atomset.t
(** [saturate rules facts] (default [`Seminaive]).
    @raise Invalid_argument if some rule has existential variables. *)

val rounds :
  ?strategy:[ `Naive | `Seminaive ] -> Rule.t list -> Atomset.t ->
  Atomset.t list
(** The instance after each round, [facts] first (for inspection and
    tests). *)
