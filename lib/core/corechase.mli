(** The paper's primary contribution as a library (Sections 5, 8, 9).

    Entry module of [corechase.core]:

    - {!Measures} — structural measures, uniform/recurring boundedness
      (Section 5);
    - {!Robust} — robust renaming, robust sequences and the robust
      aggregation [D⊛] (Definitions 14–16, Lemma 1, Propositions 10–11);
    - {!Entailment} — CQ/UCQ entailment via universal chase prefixes and
      bounded countermodels (Proposition 1(3), Proposition 9, Theorem 1),
      certain answers, consistency w.r.t. negative constraints;
    - {!Probes} — budgeted semi-procedures for the abstract classes fes /
      bts / core-bts of Figure 1 (Definitions 6 and 17);
    - {!Certificate} — independently checkable entailment certificates. *)

module Measures : module type of Measures

module Robust : module type of Robust

module Entailment : module type of Entailment

module Probes : module type of Probes

module Certificate : module type of Certificate

module Obs : module type of Obs
(** Structured observability — metrics registry and trace-event stream
    shared by every engine (DESIGN.md §8). *)

module Par : module type of Par
(** The domain pool and its deterministic fan-out combinators
    (DESIGN.md §10); sized by [CORECHASE_JOBS] / [--jobs]. *)

open Syntax

val finitely_universal_on_prefixes : Atomset.t list -> Atomset.t list -> bool
(** The experimental counterpart of Definition 13: every listed finite
    prefix (of a candidate finitely universal model) maps homomorphically
    into every listed model. *)

val query_holds : Kb.Query.t -> Atomset.t -> bool
(** Re-export of {!Entailment.holds_in} (Proposition 9's query
    evaluation). *)
