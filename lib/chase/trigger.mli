(** Triggers and rule application (Section 2).

    A trigger for an instance [I] is a pair [tr = (R, π)] where [π] maps
    [body(R)] into [I].  It is {e satisfied} in [I] when [π] extends to a
    homomorphism from [body(R) ∪ head(R)] into [I].  Applying [tr] on [I]
    produces [α(I, tr) = I ∪ π_safe(head(R))] where [π_safe] maps frontier
    variables through [π] and existential variables to globally fresh
    nulls (footnote 2 of the paper). *)

open Syntax

type t = private { rule : Rule.t; mapping : Subst.t }

val make : Rule.t -> Subst.t -> t
(** [make r π].  [π] is restricted to the universal variables of [r]. *)

val rule : t -> Rule.t

val mapping : t -> Subst.t

val rename : Subst.t -> t -> t
(** The paper's [σ(tr) = (R, σ • π)]. *)

val equal : t -> t -> bool
(** Same rule (by name and content) and same mapping on the rule's
    universal variables. *)

val is_trigger_for : t -> Atomset.t -> bool
(** [π(body R) ⊆ I]. *)

val is_trigger_for_in : t -> Homo.Instance.t -> bool
(** As {!is_trigger_for} on a pre-indexed instance (membership checks
    against the index, no subset materialisation). *)

val satisfied : t -> Atomset.t -> bool
(** Satisfaction in an arbitrary instance: [π] maps the body into it and
    extends to the head. *)

val satisfied_in : t -> Homo.Instance.t -> bool
(** As {!satisfied} on a pre-indexed instance. *)

type application = {
  result : Atomset.t;  (** [α(I, tr)] *)
  pi_safe : Subst.t;  (** the safe extension used *)
  produced : Atomset.t;  (** [π_safe(head R)] — the atoms added *)
  fresh : Term.t list;  (** the fresh nulls created, by existential var order *)
}

val apply : t -> Atomset.t -> application
(** @raise Invalid_argument if the trigger does not hold in the instance. *)

val apply_in : t -> Homo.Instance.t -> application
(** As {!apply} on a pre-indexed instance; [result] is
    [atomset indexed ∪ produced]. *)

val apply_with_pi_safe : t -> Subst.t -> Atomset.t -> application
(** Replay an application with a {e given} safe extension (used by the
    robust-sequence construction, which must reuse "the same fresh
    variables as in [α(F_{i-1}, tr)]", Definition 15). *)

val triggers_of : Rule.t -> Homo.Instance.t -> t list
(** All triggers of a rule for an instance (one per body homomorphism),
    in deterministic search order. *)

val triggers_of_delta :
  Rule.t -> Homo.Instance.t -> delta:Atomset.t -> t list
(** Semi-naive discovery: the triggers of the rule whose body image
    contains at least one atom of [delta], found by enumerating body
    homomorphisms anchored on a delta atom (one seeded search per
    (body atom, delta atom) pair with matching predicate), deduplicated.
    Sound for engines because a trigger for the current instance that was
    not a trigger at the previous snapshot must use an atom added or
    rewritten since — i.e. an atom of [current \ snapshot]. *)

val unsatisfied_triggers : Rule.t list -> Atomset.t -> t list
(** All triggers of the rules that are {e not} satisfied — the restricted
    chase's active triggers. *)

val unsatisfied_triggers_in : ?delta:Atomset.t -> Rule.t list -> Homo.Instance.t -> t list
(** As {!unsatisfied_triggers} on a pre-indexed instance.  With [?delta],
    discovery is restricted to delta-anchored triggers
    ({!triggers_of_delta}). *)

(** Trigger-discovery mode of the chase engines (the [abl:triggers]
    ablation).  [Delta] (default) discovers per round only the triggers
    anchored in the atoms added or rewritten since the previous round's
    snapshot; [Snapshot] is the original full re-enumeration; [Audit]
    computes both, raises [Failure] if they disagree (the correctness
    oracle used by the differential tests), and proceeds with the
    snapshot's deterministic order. *)
type discovery = Delta | Snapshot | Audit

val discovery : discovery ref

val discover : ?delta:Atomset.t -> Rule.t list -> Homo.Instance.t -> t list
(** The engine entry point for active-trigger (unsatisfied) discovery,
    honouring {!discovery}.  [?delta] is the atoms added or rewritten
    since the caller's previous discovery; omitted on the first round
    (full enumeration regardless of mode). *)

val discover_all : ?delta:Atomset.t -> Rule.t list -> Homo.Instance.t -> t list
(** As {!discover} but without the satisfaction filter — all triggers, for
    the oblivious/skolem baselines (which deduplicate by trigger key
    themselves).  In [Audit] mode the delta result is checked against the
    snapshot triggers whose body image touches [delta]. *)

val pp : t Fmt.t
