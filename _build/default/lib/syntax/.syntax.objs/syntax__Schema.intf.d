lib/syntax/schema.mli: Atom Atomset Fmt Kb Rule
