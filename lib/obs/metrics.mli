(** Named metrics with a cheap disabled path (DESIGN.md §8).

    A process-wide registry of monotonic counters, gauges and timing
    histograms.  Instruments register their metrics once, at module
    initialisation; every mutation is guarded by {!enabled}, so with the
    registry disabled (the default) an instrumented hot path pays one
    [ref] dereference and a branch — nothing is allocated and nothing is
    written.

    Metric names are dot-separated, [<subsystem>.<metric>]:
    [chase.triggers_applied], [hom.backtracks], [tw.computations], …  The
    registry is keyed by name, so calling a constructor twice with the
    same name returns the same metric. *)

val enabled : bool ref
(** Master switch, default [false].  Mutations are no-ops while [false];
    reads ({!snapshot}, {!counter_value}, …) always work. *)

(** {1 Domain slots} — per-domain counter cells (DESIGN.md §10)

    Every counter keeps one atomic cell per {e slot}; a mutation touches
    only the calling domain's cell (slot 0 = the main domain, slots 1..
    = [Par] pool workers), so counting from worker domains is race-free
    without locks.  Totals are summed on read. *)

val max_slots : int
(** Number of per-counter cells (main domain + up to 64 workers). *)

val slot : unit -> int
(** The calling domain's slot (domain-local; defaults to 0). *)

val set_slot : int -> unit
(** Pin the calling domain's slot.  Called once per pool worker at
    spawn.  @raise Invalid_argument outside [0, max_slots). *)

(** {1 Counters} — monotonic event counts *)

type counter

val counter : string -> counter
(** Find-or-create the named counter (initially 0). *)

val incr : counter -> unit

val add : counter -> int -> unit

val count_minor_words : counter -> (unit -> 'a) -> 'a
(** Run the thunk, adding the minor-heap words it allocated (a
    [Gc.minor_words] delta, exact and per-domain) to the counter when
    {!enabled}; when disabled the thunk is called directly — no clock,
    no [Gc] read.  The thunk must run to completion on the calling
    domain.  Backs the [hom.minor_words] / [trigger.minor_words]
    allocation accounting (DESIGN.md §12). *)

(** {1 Gauges} — last-seen and peak values of a level *)

type gauge

val gauge : string -> gauge

val set : gauge -> int -> unit
(** Record the current level; the gauge also remembers the peak. *)

(** {1 Histograms} — duration summaries in milliseconds *)

type histogram

val histogram : string -> histogram

val observe : histogram -> float -> unit
(** Record one duration (ms): count, sum, min and max are maintained. *)

val time : histogram -> (unit -> 'a) -> 'a
(** Run the thunk, observing its wall-clock duration when {!enabled};
    when disabled the thunk is called directly (no clock read). *)

(** {1 Reading the registry} *)

type value =
  | Counter of int
  | Gauge of { value : int; peak : int }
  | Histogram of { n : int; sum_ms : float; min_ms : float; max_ms : float }

val snapshot : unit -> (string * value) list
(** Every registered metric, sorted by name. *)

val counters : unit -> (string * int) list
(** Only the counters, sorted by name (the machine-readable columns the
    bench harness writes to BENCH_RESULTS.json). *)

val counters_by_slot : unit -> (string * int array) list
(** The counters with their per-slot cells (length {!max_slots}), sorted
    by name.  With the pool's static task assignment the split is
    deterministic for a deterministic run. *)

val counter_value : string -> int
(** Current value of the named counter; 0 if never registered. *)

val reset : unit -> unit
(** Zero every registered metric (registrations survive). *)

val pp_table : Format.formatter -> unit -> unit
(** Human-readable table of the whole registry, one metric per line.
    Counter and gauge rows are deterministic for a deterministic run;
    histogram rows include timings and are not. *)

val pp_domain_table : Format.formatter -> unit -> unit
(** Per-domain counter breakdown: one row per counter with a nonzero
    total, as [total = slot0+slot1+…] over the live slots.  The split
    sums to the {!pp_table} totals by construction. *)
