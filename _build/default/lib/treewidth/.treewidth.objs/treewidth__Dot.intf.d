lib/treewidth/dot.mli: Atomset Decomposition Syntax
