(** Cores of finite atomsets (Section 2).

    A finite atomset is a {e core} if its only retraction is the identity.
    Every finite atomset has a retract that is a core, unique up to
    isomorphism.  The core chase (and Definition 14's robust renaming)
    need the {e retraction} onto the core, not merely the core itself, so
    the central entry point here returns the substitution.

    Algorithm: repeatedly look for a variable [x] and an endomorphism of
    [A] into [A] minus the atoms containing [x] (a "fold" eliminating
    [x]); compose the folds; when no variable can be eliminated the image
    is a core.  The composite is a homomorphism [A → core] but not yet a
    retraction; its restriction to the core is an automorphism of the
    core, which we invert and pre-compose to obtain a genuine retraction
    (identity on the core's terms).  Completeness: a non-core finite
    atomset has a proper retraction, whose image omits at least one
    variable, so the per-variable fold search cannot miss it.

    Two fold strategies are available for ablation ([abl:core]):
    [By_variable] (default) searches, per variable [x], for an
    endomorphism into [A] minus the atoms containing [x];
    [By_atom] searches, per non-ground atom [at], for an endomorphism into
    [A ∖ {at}].  Both are complete; their search profiles differ. *)

open Syntax

type strategy = By_variable | By_atom

val strategy : strategy ref
(** Default [Whole_image]. *)

val retraction_to_core : Atomset.t -> Subst.t
(** A retraction [σ] of the atomset with [σ(A)] a core.  The identity
    substitution (empty) when the atomset is already a core. *)

val of_atomset : Atomset.t -> Atomset.t
(** The core itself: [σ(A)] for [σ = retraction_to_core A]. *)

val is_core : Atomset.t -> bool

val core_with_retraction : Atomset.t -> Atomset.t * Subst.t
(** Both at once. *)
