(** Syntactic decidability classes for existential rules (the concrete
    landscape sketched in Sections 1 and 4 of the paper).

    Entry module of the [rclasses] library, with the standard implications

    - datalog / weak acyclicity / joint acyclicity / acyclic GRD ⟹ the
      chase terminates on every instance ⟹ fes ⟹ core-bts;
    - (weakly) (frontier-)guarded / linear ⟹ treewidth-bounded chases
      ⟹ bts ⟹ core-bts. *)

module Position : module type of Position

module Guardedness : module type of Guardedness

module Acyclicity : module type of Acyclicity

module Dependency : module type of Dependency

open Syntax

type report = {
  datalog : bool;
  linear : bool;
  guarded : bool;
  frontier_guarded : bool;
  frontier_one : bool;
  weakly_guarded : bool;
  weakly_frontier_guarded : bool;
  weakly_acyclic : bool;
  jointly_acyclic : bool;
  agrd_sound : bool;
}

val analyze : Rule.t list -> report

val implies_fes : report -> bool
(** Some syntactic certificate of universal chase termination holds. *)

val implies_bts : report -> bool
(** Some guardedness-family certificate holds. *)

val implies_core_bts : report -> bool
(** Either of the above (Proposition 13: core-bts subsumes both). *)

val pp_report : report Fmt.t
