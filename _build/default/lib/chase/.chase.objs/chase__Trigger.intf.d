lib/chase/trigger.mli: Atomset Fmt Homo Rule Subst Syntax Term
