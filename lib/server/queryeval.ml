(* One renderer for entailment results, shared by the batch CLI and the
   server session handler so the differential law (server ≡ CLI, byte
   for byte) is enforced by construction rather than by coincidence. *)

open Syntax
module E = Corechase.Entailment

type severity = Sev_ok | Sev_not_entailed | Sev_stopped

let rank = function Sev_ok -> 0 | Sev_not_entailed -> 1 | Sev_stopped -> 2
let worst a b = if rank a >= rank b then a else b
let exit_code = rank

let severity_name = function
  | Sev_ok -> "ok"
  | Sev_not_entailed -> "not-entailed"
  | Sev_stopped -> "stopped"

let verdict_line q v =
  let sev =
    match v with
    | E.Entailed -> Sev_ok
    | E.Not_entailed -> Sev_not_entailed
    | E.Unknown _ -> Sev_stopped
  in
  (Fmt.str "%a  ⟶  %a" Kb.Query.pp q E.pp_verdict v, sev)

let tuples_str tuples =
  String.concat " "
    (List.map
       (fun t ->
         "("
         ^ String.concat ", " (List.map (fun x -> Fmt.str "%a" Term.pp x) t)
         ^ ")")
       tuples)

let answers_line q = function
  | E.Complete tuples ->
      ( Fmt.str "%a  ⟶  %d certain answer(s): %s" Kb.Query.pp q
          (List.length tuples) (tuples_str tuples),
        Sev_ok )
  | E.Sound tuples ->
      ( Fmt.str "%a  ⟶  ≥%d certain answer(s) (budget hit): %s" Kb.Query.pp q
          (List.length tuples) (tuples_str tuples),
        Sev_stopped )

let constraints_line = function
  | E.Entailed -> ("KB is INCONSISTENT (a constraint body is entailed)", Sev_ok)
  | E.Not_entailed -> ("constraints: consistent", Sev_ok)
  | E.Unknown m -> (Fmt.str "constraints: unknown (%s)" m, Sev_stopped)
