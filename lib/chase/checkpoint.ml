(** On-disk chase checkpoints (DESIGN.md §11).

    A checkpoint serializes a {!Variants.engine_state} — captured at a
    completed round boundary — together with everything needed to resume
    the run {e exactly}: the engine name, the budget, the [Term]
    freshness counter and the instance generation counter.  The format
    is a versioned, line-oriented text file; terms are percent-encoded
    tokens so atom and substitution lines split on spaces. *)

open Syntax

let version = 1

let magic = "CORECHASE-CHECKPOINT"

let m_written = Obs.Metrics.counter "resilience.checkpoints"

type header = {
  engine : string;
  kb_path : string option;
  kb_digest : string option;  (** hex MD5 of the KB document *)
  max_steps : int;
  max_atoms : int;
  term_counter : int;
  generation_counter : int;
}

(* ------------------------------------------------------------------ *)
(* token encoding                                                      *)

let enc_buf = Buffer.create 64

let encode s =
  Buffer.clear enc_buf;
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' ->
          Buffer.add_char enc_buf c
      | c -> Buffer.add_string enc_buf (Printf.sprintf "%%%02X" (Char.code c)))
    s;
  Buffer.contents enc_buf

let decode s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i < n then
      if s.[i] = '%' then begin
        if i + 2 >= n then failwith "truncated %-escape";
        Buffer.add_char b
          (Char.chr (int_of_string ("0x" ^ String.sub s (i + 1) 2)));
        go (i + 3)
      end
      else begin
        Buffer.add_char b s.[i];
        go (i + 1)
      end
  in
  go 0;
  Buffer.contents b

(* term tokens: [c%<enc-name>] for constants, [v%<id>%<enc-hint>] for
   variables ('%' cannot start an encoded fragment's first char set, so
   the leading tag is unambiguous) *)
let term_token t =
  if Term.is_const t then "c%" ^ encode (Term.hint t)
  else Printf.sprintf "v%%%d%%%s" (Term.rank t) (encode (Term.hint t))

let term_of_token tok =
  match String.split_on_char '%' tok with
  | "c" :: rest -> Term.const (decode (String.concat "%" rest))
  | "v" :: id :: rest ->
      let hint = decode (String.concat "%" rest) in
      let hint = if hint = "" then None else Some hint in
      Term.var_of_id ?hint (int_of_string id)
  | _ -> failwith ("bad term token: " ^ tok)

let atom_line at =
  String.concat " "
    (encode (Atom.pred at) :: List.map term_token (Atom.args at))

let atom_of_line line =
  match String.split_on_char ' ' line with
  | [] | [ "" ] -> failwith "empty atom line"
  | p :: args -> Atom.make (decode p) (List.map term_of_token args)

let subst_tokens s =
  List.concat_map
    (fun (x, t) -> [ term_token x; term_token t ])
    (Subst.to_list s)

let subst_of_tokens toks =
  (* tail-recursive: a checkpoint line is attacker-sized input (fuzzed in
     test/test_storage.ml), so it must not be able to blow the stack *)
  let rec pairs acc = function
    | [] -> List.rev acc
    | x :: t :: rest -> pairs ((term_of_token x, term_of_token t) :: acc) rest
    | [ _ ] -> failwith "odd substitution token count"
  in
  Subst.of_list (pairs [] toks)

(* ------------------------------------------------------------------ *)
(* writing                                                             *)

let write_atomset oc tag a =
  let atoms = Atomset.to_list a in
  Printf.fprintf oc "%s %d\n" tag (List.length atoms);
  List.iter (fun at -> Printf.fprintf oc "%s\n" (atom_line at)) atoms

let save ~path ~engine ?kb_path ?kb_digest ~(budget : Variants.budget)
    (state : Variants.engine_state) =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      Printf.fprintf oc "%s %d\n" magic version;
      Printf.fprintf oc "engine %s\n" (encode engine);
      Printf.fprintf oc "kb-path %s\n"
        (match kb_path with Some p -> encode p | None -> "-");
      Printf.fprintf oc "kb-digest %s\n"
        (match kb_digest with Some d -> d | None -> "-");
      Printf.fprintf oc "max-steps %d\n" budget.Variants.max_steps;
      Printf.fprintf oc "max-atoms %d\n" budget.Variants.max_atoms;
      Printf.fprintf oc "steps-done %d\n" state.Variants.state_steps;
      Printf.fprintf oc "rounds-done %d\n" state.Variants.state_rounds;
      Printf.fprintf oc "term-counter %d\n" (Term.counter_value ());
      Printf.fprintf oc "generation-counter %d\n"
        (Homo.Instance.generation_counter_value ());
      (match state.Variants.state_snapshot with
      | None -> Printf.fprintf oc "snapshot -\n"
      | Some snap -> write_atomset oc "snapshot" snap);
      let steps = Derivation.steps state.Variants.state_derivation in
      Printf.fprintf oc "steps %d\n" (List.length steps);
      List.iter
        (fun (st : Derivation.step) ->
          Printf.fprintf oc "step %d\n" st.Derivation.index;
          Printf.fprintf oc "pi-safe %s\n"
            (String.concat " " (subst_tokens st.Derivation.pi_safe));
          Printf.fprintf oc "sigma %s\n"
            (String.concat " " (subst_tokens st.Derivation.simplification));
          write_atomset oc "pre" st.Derivation.pre_instance;
          write_atomset oc "inst" st.Derivation.instance)
        steps;
      Printf.fprintf oc "end\n");
  Sys.rename tmp path;
  if !Obs.Metrics.enabled then Obs.Metrics.incr m_written;
  if Obs.Trace.enabled () then
    Obs.Trace.emit
      (Obs.Trace.Checkpoint_written
         {
           engine;
           step = state.Variants.state_steps;
           path;
         })

(* ------------------------------------------------------------------ *)
(* reading                                                             *)

type reader = { mutable lines : string list; mutable lineno : int }

let next r =
  match r.lines with
  | [] -> failwith "unexpected end of file"
  | l :: rest ->
      r.lines <- rest;
      r.lineno <- r.lineno + 1;
      l

let field r key =
  let l = next r in
  match String.index_opt l ' ' with
  | Some i when String.sub l 0 i = key ->
      String.sub l (i + 1) (String.length l - i - 1)
  | _ ->
      failwith
        (Printf.sprintf "line %d: expected field %S, got %S" r.lineno key l)

let int_field r key =
  let v = field r key in
  match int_of_string_opt v with
  | Some n -> n
  | None -> failwith (Printf.sprintf "field %s: not an integer: %S" key v)

let read_atomset r tag =
  match field r tag with
  | "-" -> None
  | v -> (
      match int_of_string_opt v with
      | None -> failwith (Printf.sprintf "field %s: bad count %S" tag v)
      | Some n ->
          let rec go k acc =
            if k = 0 then Some (Atomset.of_list (List.rev acc))
            else go (k - 1) (atom_of_line (next r) :: acc)
          in
          go n [])

let subst_field r key =
  match field r key with
  | "" -> Subst.empty
  | v -> subst_of_tokens (String.split_on_char ' ' v)

let parse_header_exn r =
  (match String.split_on_char ' ' (next r) with
  | [ m; v ] when m = magic ->
      if int_of_string_opt v <> Some version then
        failwith
          (Printf.sprintf "unsupported checkpoint version %s (expected %d)" v
             version)
  | _ -> failwith "not a corechase checkpoint (bad magic line)");
  let engine = decode (field r "engine") in
  let kb_path =
    match field r "kb-path" with "-" -> None | p -> Some (decode p)
  in
  let kb_digest = match field r "kb-digest" with "-" -> None | d -> Some d in
  let max_steps = int_field r "max-steps" in
  let max_atoms = int_field r "max-atoms" in
  let steps_done = int_field r "steps-done" in
  let rounds_done = int_field r "rounds-done" in
  let term_counter = int_field r "term-counter" in
  let generation_counter = int_field r "generation-counter" in
  ( {
      engine;
      kb_path;
      kb_digest;
      max_steps;
      max_atoms;
      term_counter;
      generation_counter;
    },
    steps_done,
    rounds_done )

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | l -> go (l :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

(** [read_header path] parses only the leading header fields — no terms
    are built and no counters touched, so it is safe to call before the
    KB re-parse (the CLI uses it to learn which KB and engine to set up
    before the full {!load}). *)
let read_header path : (header, string) result =
  match
    let r = { lines = read_lines path; lineno = 0 } in
    let h, _, _ = parse_header_exn r in
    h
  with
  | h -> Ok h
  | exception Failure msg -> Error (path ^ ": " ^ msg)
  | exception Sys_error msg -> Error msg
  | exception Invalid_argument msg -> Error (path ^ ": " ^ msg)

(** [load path] parses the checkpoint and rebuilds the engine state.

    Call this {e after} re-parsing the KB (so the KB's deterministic
    variable ids are allocated first) and {e before} building any new
    term: on success it restores the [Term] freshness counter to the
    checkpointed value and bumps the instance generation counter to at
    least the checkpointed one, which is what makes the resumed run
    agree with the uninterrupted one step for step (DESIGN.md §11). *)
let load kb path :
    (header * Variants.budget * Variants.engine_state, string) result =
  match
    let r = { lines = read_lines path; lineno = 0 } in
    let header, steps_done, rounds_done = parse_header_exn r in
    let snapshot = read_atomset r "snapshot" in
    let n_steps = int_field r "steps" in
    let steps =
      List.init n_steps (fun _ ->
          let index = int_field r "step" in
          let pi_safe = subst_field r "pi-safe" in
          let sigma = subst_field r "sigma" in
          let pre =
            match read_atomset r "pre" with
            | Some a -> a
            | None -> failwith "step without a pre-instance"
          in
          let inst =
            match read_atomset r "inst" with
            | Some a -> a
            | None -> failwith "step without an instance"
          in
          {
            Derivation.index;
            trigger = None;
            pi_safe;
            pre_instance = pre;
            simplification = sigma;
            instance = inst;
          })
    in
    (match next r with
    | "end" -> ()
    | l -> failwith (Printf.sprintf "expected end marker, got %S" l));
    let state =
      {
        Variants.state_derivation = Derivation.of_steps kb steps;
        state_steps = steps_done;
        state_rounds = rounds_done;
        state_snapshot = snapshot;
      }
    in
    (* exact-resume counter restoration: reconstruction above has only
       bumped the counters monotonically via [var_of_id]; pin them to the
       checkpointed values now (any terms the aborted run built past the
       checkpoint are discarded, so re-issuing their ids is sound — and
       required for the differential to hold) *)
    Term.restore_counter_for_resume header.term_counter;
    Homo.Instance.ensure_generation_counter_at_least header.generation_counter;
    let budget =
      { Variants.max_steps = header.max_steps; max_atoms = header.max_atoms }
    in
    (header, budget, state)
  with
  | v -> Ok v
  | exception Failure msg -> Error (path ^ ": " ^ msg)
  | exception Sys_error msg -> Error msg
  | exception Invalid_argument msg -> Error (path ^ ": " ^ msg)

let digest_of_file path =
  try Some (Digest.to_hex (Digest.file path)) with Sys_error _ -> None
