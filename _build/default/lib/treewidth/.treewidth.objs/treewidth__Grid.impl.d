lib/treewidth/grid.ml: Array Atom Atomset Homo List Subst Syntax Term
