test/test_repl.ml: Alcotest List Repl String
