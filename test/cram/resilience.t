Resilient execution from the CLI: budget-aware exit codes, deadlines,
checkpoint/resume, and the fault-injection harness (DESIGN.md §11).

  $ cat > family.dlgp <<'KB'
  > parent(alice, bob).
  > parent(bob, carol).
  > [anc-base] ancestor(X, Y) :- parent(X, Y).
  > [anc-rec]  ancestor(X, Z) :- parent(X, Y), ancestor(Y, Z).
  > ?(X) :- ancestor(alice, X).
  > KB

  $ cat > diverge.dlgp <<'KB'
  > r(a, b).
  > [chain] r(Y, Z) :- r(X, Y).
  > KB

A budget-stopped chase reports which budget fired and exits 2,
writing a checkpoint at the last completed round:

  $ corechase chase family.dlgp --variant restricted --steps 2 --checkpoint fam.ckpt
  variant:    restricted
  outcome:    step budget exhausted
  steps:      2
  final size: 4 atoms
  [2]

Resuming with a larger budget continues the run exactly — same steps,
same fixpoint as an uninterrupted run, exit 0:

  $ corechase resume fam.ckpt --steps 100
  variant:    restricted
  outcome:    terminated (fixpoint reached)
  steps:      3
  final size: 5 atoms

A pre-expired deadline stops before the first application, exit 2:

  $ corechase chase diverge.dlgp --variant restricted --deadline 0
  variant:    restricted
  outcome:    deadline exceeded
  steps:      0
  final size: 1 atoms
  [2]

Injected faults are caught at the engine boundary; the run reports the
last consistent instance instead of crashing:

  $ CORECHASE_FAULTS=step:2:out_of_memory corechase chase family.dlgp --variant restricted
  variant:    restricted
  outcome:    out of memory (resource limit)
  steps:      1
  final size: 3 atoms
  [2]

Entailment under an insufficient budget is reported as unknown, exit 2:

  $ corechase entail family.dlgp --steps 1
  ?(X) :- ancestor(alice, X)  ⟶  ≥0 certain answer(s) (budget hit): 
  [2]

Resuming against a KB that changed since the checkpoint was written is
refused (digest mismatch), exit 3:

  $ echo "parent(x, y)." >> family.dlgp
  $ corechase resume fam.ckpt --steps 100
  corechase: fam.ckpt: family.dlgp changed since the checkpoint was written (expected digest c9caa28e794c6f03611e7fe97ca991f6, found 57fa7049c6fe9ccf93605dd097f12617); resuming against a different KB would not be exact
  [3]
