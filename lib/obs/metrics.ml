let enabled = ref false

(* Domain slots (DESIGN.md §10).  Counters keep one atomic cell per pool
   slot: slot 0 is the main domain, slots 1.. are `Par` workers (each
   worker pins its slot once via [set_slot], stored in domain-local
   state).  A mutation touches only the calling domain's cell, so
   counting is race-free without a lock; a read sums the cells.  The
   per-slot split is preserved (see [counters_by_slot]) because with the
   pool's static task assignment it is deterministic — the cram tests pin
   it. *)
let max_slots = 65

let slot_key = Domain.DLS.new_key (fun () -> 0)

let slot () = Domain.DLS.get slot_key

let set_slot s =
  if s < 0 || s >= max_slots then invalid_arg "Metrics.set_slot";
  Domain.DLS.set slot_key s

type counter = { c_name : string; cells : int Atomic.t array }

type gauge = { g_name : string; mutable value : int; mutable peak : int }

type histogram = {
  h_name : string;
  mutable n : int;
  mutable sum_ms : float;
  mutable min_ms : float;
  mutable max_ms : float;
}

let counters_tbl : (string, counter) Hashtbl.t = Hashtbl.create 32
let gauges_tbl : (string, gauge) Hashtbl.t = Hashtbl.create 16
let histograms_tbl : (string, histogram) Hashtbl.t = Hashtbl.create 16

let counter name =
  match Hashtbl.find_opt counters_tbl name with
  | Some c -> c
  | None ->
      let c =
        { c_name = name; cells = Array.init max_slots (fun _ -> Atomic.make 0) }
      in
      Hashtbl.replace counters_tbl name c;
      c

let incr c =
  if !enabled then
    Atomic.incr c.cells.(Domain.DLS.get slot_key)

let add c n =
  if !enabled then
    ignore (Atomic.fetch_and_add c.cells.(Domain.DLS.get slot_key) n)

let total c = Array.fold_left (fun acc cell -> acc + Atomic.get cell) 0 c.cells

let gauge name =
  match Hashtbl.find_opt gauges_tbl name with
  | Some g -> g
  | None ->
      let g = { g_name = name; value = 0; peak = 0 } in
      Hashtbl.replace gauges_tbl name g;
      g

let set g v =
  if !enabled then begin
    g.value <- v;
    if v > g.peak then g.peak <- v
  end

let histogram name =
  match Hashtbl.find_opt histograms_tbl name with
  | Some h -> h
  | None ->
      let h =
        { h_name = name; n = 0; sum_ms = 0.; min_ms = infinity; max_ms = 0. }
      in
      Hashtbl.replace histograms_tbl name h;
      h

let observe h ms =
  if !enabled then begin
    h.n <- h.n + 1;
    h.sum_ms <- h.sum_ms +. ms;
    if ms < h.min_ms then h.min_ms <- ms;
    if ms > h.max_ms then h.max_ms <- ms
  end

(* Allocation sampling (DESIGN.md §12): [Gc.minor_words] is a per-domain
   monotone count of words allocated on the minor heap, so a delta around
   a thunk measures exactly the thunk's own minor allocations — provided
   the thunk does not migrate domains, which none of the instrumented
   sites do (pool workers run their tasks to completion in place).  The
   float-to-int conversion is exact until a domain has allocated 2^62
   words; the counters overflow the benchmark horizon long before the
   conversion does. *)
let count_minor_words c f =
  if not !enabled then f ()
  else begin
    let w0 = Gc.minor_words () in
    Fun.protect
      ~finally:(fun () -> add c (int_of_float (Gc.minor_words () -. w0)))
      f
  end

let time h f =
  if !enabled then begin
    let t0 = Sys.time () in
    Fun.protect ~finally:(fun () -> observe h ((Sys.time () -. t0) *. 1000.)) f
  end
  else f ()

type value =
  | Counter of int
  | Gauge of { value : int; peak : int }
  | Histogram of { n : int; sum_ms : float; min_ms : float; max_ms : float }

let snapshot () =
  let rows = ref [] in
  Hashtbl.iter
    (fun name c -> rows := (name, Counter (total c)) :: !rows)
    counters_tbl;
  Hashtbl.iter
    (fun name g -> rows := (name, Gauge { value = g.value; peak = g.peak }) :: !rows)
    gauges_tbl;
  Hashtbl.iter
    (fun name h ->
      rows :=
        ( name,
          Histogram
            {
              n = h.n;
              sum_ms = h.sum_ms;
              min_ms = (if h.n = 0 then 0. else h.min_ms);
              max_ms = h.max_ms;
            } )
        :: !rows)
    histograms_tbl;
  List.sort (fun (a, _) (b, _) -> String.compare a b) !rows

let counters () =
  Hashtbl.fold (fun name c acc -> (name, total c) :: acc) counters_tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters_by_slot () =
  Hashtbl.fold
    (fun name c acc -> (name, Array.map Atomic.get c.cells) :: acc)
    counters_tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counter_value name =
  match Hashtbl.find_opt counters_tbl name with
  | Some c -> total c
  | None -> 0

let reset () =
  Hashtbl.iter
    (fun _ c -> Array.iter (fun cell -> Atomic.set cell 0) c.cells)
    counters_tbl;
  Hashtbl.iter
    (fun _ g ->
      g.value <- 0;
      g.peak <- 0)
    gauges_tbl;
  Hashtbl.iter
    (fun _ h ->
      h.n <- 0;
      h.sum_ms <- 0.;
      h.min_ms <- infinity;
      h.max_ms <- 0.)
    histograms_tbl

let pp_table ppf () =
  List.iter
    (fun (name, v) ->
      match v with
      | Counter n -> Format.fprintf ppf "  %-32s %d@." name n
      | Gauge { value; peak } ->
          Format.fprintf ppf "  %-32s %d (peak %d)@." name value peak
      | Histogram { n; sum_ms; _ } ->
          Format.fprintf ppf "  %-32s n=%d sum=%.2fms@." name n sum_ms)
    (snapshot ())

let pp_domain_table ppf () =
  (* one row per counter with a nonzero total: total, then the per-slot
     split over slots 0..max live slot (the main domain plus every worker
     that counted anything in any counter) *)
  let rows = counters_by_slot () in
  let top =
    List.fold_left
      (fun acc (_, cells) ->
        let m = ref acc in
        Array.iteri (fun i v -> if v <> 0 && i > !m then m := i) cells;
        !m)
      0 rows
  in
  List.iter
    (fun (name, cells) ->
      let tot = Array.fold_left ( + ) 0 cells in
      if tot > 0 then begin
        let parts =
          String.concat "+"
            (List.init (top + 1) (fun i -> string_of_int cells.(i)))
        in
        Format.fprintf ppf "  %-32s %d = %s@." name tot parts
      end)
    rows
