lib/syntax/atomset.mli: Atom Fmt Term
