open Syntax

type t = {
  derivation : Chase.Derivation.t;
  index : int;
  witness : Subst.t;
}

let find ?(variant = `Core) ?budget kb q =
  let run =
    match variant with
    | `Restricted -> Chase.Variants.restricted ?budget kb
    | `Core -> Chase.Variants.core ?budget kb
  in
  let d = run.Chase.Variants.derivation in
  let rec scan = function
    | [] -> None
    | st :: rest -> (
        match
          Homo.Hom.find_into (Kb.Query.atoms q) st.Chase.Derivation.instance
        with
        | Some h ->
            Some
              {
                derivation = d;
                index = st.Chase.Derivation.index;
                witness = Subst.restrict (Kb.Query.vars q) h;
              }
        | None -> scan rest)
  in
  scan (Chase.Derivation.steps d)

let check kb q cert =
  let ( let* ) = Result.bind in
  let check_ b msg = if b then Ok () else Error msg in
  let d = cert.derivation in
  let* () =
    check_
      (Atomset.equal (Kb.facts (Chase.Derivation.kb d)) (Kb.facts kb))
      "certificate derivation starts from different facts"
  in
  let* () =
    check_
      (List.for_all
         (fun st ->
           match st.Chase.Derivation.trigger with
           | None -> true
           | Some tr ->
               List.exists
                 (Rule.equal (Chase.Trigger.rule tr))
                 (Kb.rules kb))
         (Chase.Derivation.steps d))
      "certificate fires a rule outside the KB"
  in
  let* () = Chase.Derivation.validate d in
  let* () =
    check_
      (cert.index >= 0 && cert.index < Chase.Derivation.length d)
      "certificate index out of range"
  in
  let target = Chase.Derivation.instance_at d cert.index in
  check_
    (Atomset.subset (Subst.apply cert.witness (Kb.Query.atoms q)) target)
    "witness does not map the query into the indexed element"

let pp ppf cert =
  let rules =
    List.filter_map
      (fun st ->
        Option.map
          (fun tr -> Rule.name (Chase.Trigger.rule tr))
          st.Chase.Derivation.trigger)
      (Chase.Derivation.steps cert.derivation)
  in
  Fmt.pf ppf
    "@[<v>entailment certificate: %d rule applications, query maps into F_%d@,\
     rules fired: %a@,witness: %a@]"
    (Chase.Derivation.length cert.derivation - 1)
    cert.index
    Fmt.(list ~sep:sp string)
    rules Subst.pp cert.witness
