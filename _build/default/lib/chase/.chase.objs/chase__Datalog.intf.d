lib/chase/datalog.mli: Atomset Rule Syntax
