(** Empirical probes for the abstract ruleset classes of Figure 1.

    The classes fes (finite expansion sets), bts (bounded treewidth sets,
    Definition 6) and core-bts (Definition 17) are undecidable in general;
    the probes below are the budgeted semi-procedures that the experiment
    harness uses to populate the paper's class-membership picture:

    - [fes_*]: does the core chase terminate (within budget)?  Termination
      certifies membership behaviour on the probed instance; budget
      exhaustion is inconclusive.
    - [tw_series_*]: the treewidth profile of a chase run — uniformly
      bounded profiles witness bts/core-bts behaviour on the probed
      instance, monotone growth witnesses the inflating-elevator
      phenomenon.

    The {!critical_instance} (one constant, all predicates saturated) is
    the classical single-instance probe for ∀-termination of the skolem
    chase; for the core chase it remains a useful heuristic, which is how
    the harness uses it (documented in EXPERIMENTS.md). *)

open Syntax

val critical_instance : Rule.t list -> Atomset.t
(** All atoms [p(★,…,★)] over the rules' predicates and the single constant
    [★] (plus every constant mentioned by the rules). *)

type termination =
  | Terminates of int  (** steps used *)
  | No_verdict of Chase.Variants.outcome
      (** why the probe stopped short of a fixpoint (budget, deadline,
          resource exhaustion or cancellation) *)

val core_chase_terminates : ?budget:Chase.Variants.budget -> Kb.t -> termination

val fes_probe : ?budget:Chase.Variants.budget -> Rule.t list -> termination
(** Core-chase termination on the critical instance. *)

val tw_series_of_run :
  ?budget:Chase.Variants.budget -> variant:[ `Restricted | `Core ] -> Kb.t ->
  int list
(** Treewidth (best effort) of each derivation element [F_0, F_1, …]. *)

type tw_profile = {
  series : int list;
  max_seen : int;
  uniform_candidate : int;  (** max of the series — the only possible uniform bound on the prefix *)
  monotone_growing : bool;  (** the inflating-elevator signature *)
}

val tw_profile : ?budget:Chase.Variants.budget -> variant:[ `Restricted | `Core ] ->
  Kb.t -> tw_profile
