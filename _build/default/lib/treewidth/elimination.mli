(** Elimination orderings and the decompositions they induce.

    Eliminating a vertex [v] turns its current neighbourhood into a clique
    and removes [v]; the bag of [v] is [{v} ∪ N(v)] at elimination time.
    The width of an ordering is the largest bag size minus one; treewidth is
    the minimum width over all orderings.  [decomposition_of_order] realises
    the standard bag-tree construction (each bag linked to the bag of the
    first-eliminated vertex among its later neighbours). *)

val width_of_order : Graph.t -> int array -> int
(** Width of the given elimination order (a permutation of vertices). *)

val decomposition_of_order : Primal.t -> int array -> Decomposition.t
(** The tree decomposition induced by the order, on the atomset's terms. *)

val min_degree_order : Graph.t -> int array
(** Greedy: repeatedly eliminate a vertex of minimum current degree. *)

val min_fill_order : Graph.t -> int array
(** Greedy: repeatedly eliminate a vertex whose neighbourhood needs the
    fewest fill edges. *)
