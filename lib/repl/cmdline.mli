(** Shared command parsing for the interactive surfaces (REPL lines and
    server request payloads, DESIGN.md §15).  Both front ends split
    words, first lines and [key=value] options through these helpers so
    their grammars cannot drift apart. *)

val split : string -> string * string
(** [split line] is the first word of the trimmed line and the trimmed
    remainder (["" ] when absent): ["load  a.dlgp "] ↦
    [("load", "a.dlgp")]. *)

val split_line : string -> string * string
(** First line and the {e raw} rest ("" when there is no newline) — the
    rest may be a verbatim multi-line body, so it is not trimmed. *)

val words : string -> string list
(** Space-separated words, empty words dropped. *)

val int_default : string -> int -> int
(** Parse a positive integer, falling back to the default. *)

val keyvals : string list -> (string * string) list * string list
(** Split [key=value] words from positional words, preserving order
    within each class; a repeated key keeps its last occurrence. *)

val lookup : string -> (string * string) list -> string option
(** Last binding of the key, if any. *)
