open Syntax

(* Observability (DESIGN.md §8): enumeration work is counted at the two
   primitives every discovery mode funnels through, so [Snapshot], [Delta]
   and [Audit] all report the body homomorphisms they actually enumerated. *)
let m_enumerated = Obs.Metrics.counter "chase.triggers_enumerated"

let m_discoveries = Obs.Metrics.counter "chase.discoveries"

(* Allocation accounting (DESIGN.md §12): discovery is the second hot
   consumer of the flat representation after the hom search itself, so
   its minor-heap footprint is sampled the same way as [hom.minor_words]
   — a [Gc.minor_words] delta around each discovery call, main domain
   only (pool workers' shares are part of their own samples). *)
let m_minor_words = Obs.Metrics.counter "trigger.minor_words"

(* Mapping keys (DESIGN.md §12): a substitution flattened to interned
   codes, [(rank, code)] pairs in rank order ([Subst.to_list] is sorted),
   prefixed with a kind tag and the rule id where the key names a
   per-rule question.  Injective per (rule, mapping), so the memo and the
   dedup table below partition exactly as the PR-3 formatted-string keys
   did — at a hash cost of a few ints instead of a [Fmt.str] render. *)
let mapping_key ~tag ~rid mapping =
  let bindings = Subst.to_list mapping in
  let key = Array.make (2 + (2 * List.length bindings)) tag in
  key.(1) <- rid;
  List.iteri
    (fun i (x, t) ->
      key.((2 * i) + 2) <- Flat.code_of_term x;
      key.((2 * i) + 3) <- Flat.code_of_term t)
    bindings;
  key

type t = { rule : Rule.t; mapping : Subst.t }

let make rule mapping =
  { rule; mapping = Subst.restrict (Rule.universal_vars rule) mapping }

let rule tr = tr.rule

let mapping tr = tr.mapping

let rename sigma tr =
  {
    tr with
    mapping =
      Subst.restrict (Rule.universal_vars tr.rule)
        (Subst.compose sigma tr.mapping);
  }

let equal tr1 tr2 =
  Rule.equal tr1.rule tr2.rule && Subst.equal tr1.mapping tr2.mapping

let is_trigger_for tr inst =
  Atomset.subset (Subst.apply tr.mapping (Rule.body tr.rule)) inst

let is_trigger_for_in tr indexed =
  Atomset.for_all
    (Homo.Instance.mem indexed)
    (Subst.apply tr.mapping (Rule.body tr.rule))

let satisfied_in tr indexed =
  (* π extends to a homomorphism from B ∪ H into the instance.  Failed
     checks are memoised under the instance's generation: the rule id and
     the flattened mapping pin the question, the epoch pins the target
     content, so re-checking the same trigger against an unchanged
     instance (engine re-check before the round's first firing, audit
     double discovery) costs a table lookup. *)
  let src = Atomset.union (Rule.body tr.rule) (Rule.head tr.rule) in
  let memo =
    ( mapping_key ~tag:0 ~rid:(Rule.id tr.rule) tr.mapping,
      Homo.Instance.generation indexed )
  in
  Homo.Hom.exists ~memo ~seed:tr.mapping src indexed

let satisfied tr inst = satisfied_in tr (Homo.Instance.of_atomset inst)

type application = {
  result : Atomset.t;
  pi_safe : Subst.t;
  produced : Atomset.t;
  fresh : Term.t list;
}

let pi_safe_of tr =
  let frontier_part = Subst.restrict (Rule.frontier tr.rule) tr.mapping in
  let fresh = ref [] in
  let full =
    List.fold_left
      (fun s z ->
        let nv = Term.fresh_var ~hint:(Term.hint z) () in
        fresh := nv :: !fresh;
        Subst.add z nv s)
      frontier_part
      (Rule.existential_vars tr.rule)
  in
  (full, List.rev !fresh)

let apply_with tr pi_safe fresh inst =
  if not (is_trigger_for tr inst) then
    invalid_arg "Trigger.apply: not a trigger for the instance";
  let produced = Subst.apply pi_safe (Rule.head tr.rule) in
  { result = Atomset.union inst produced; pi_safe; produced; fresh }

let apply tr inst =
  let pi_safe, fresh = pi_safe_of tr in
  apply_with tr pi_safe fresh inst

let apply_in tr indexed =
  if not (is_trigger_for_in tr indexed) then
    invalid_arg "Trigger.apply_in: not a trigger for the instance";
  let pi_safe, fresh = pi_safe_of tr in
  let produced = Subst.apply pi_safe (Rule.head tr.rule) in
  {
    result = Atomset.union (Homo.Instance.atomset indexed) produced;
    pi_safe;
    produced;
    fresh;
  }

let apply_with_pi_safe tr pi_safe inst =
  let fresh =
    List.filter_map
      (fun z ->
        match Subst.find z pi_safe with
        | Some t when Term.is_var t -> Some t
        | _ -> None)
      (Rule.existential_vars tr.rule)
  in
  apply_with tr pi_safe fresh inst

let triggers_of r indexed =
  let trs = List.map (fun h -> make r h) (Homo.Hom.all (Rule.body r) indexed) in
  if !Obs.Metrics.enabled then Obs.Metrics.add m_enumerated (List.length trs);
  trs

(* Semi-naive discovery: every trigger for the current instance that was
   not a trigger at the previous snapshot must map some body atom onto an
   atom of [delta] (the atoms added or rewritten since), so it suffices to
   enumerate the body homomorphisms anchored on a delta atom.  The same
   homomorphism can be reached through several anchors; mappings are
   deduplicated per rule. *)
let triggers_of_delta r indexed ~delta =
  if Atomset.is_empty delta then []
  else
    let body = Rule.body r in
    let seen = Hashtbl.create 16 in
    let collect acc h =
      let tr = make r h in
      let key = mapping_key ~tag:0 ~rid:(Rule.id r) tr.mapping in
      if Hashtbl.mem seen key then acc
      else begin
        Hashtbl.replace seen key ();
        tr :: acc
      end
    in
    let trs =
      Atomset.fold
        (fun anchor acc ->
          Atomset.fold
            (fun datom acc ->
              if
                String.equal (Atom.pred anchor) (Atom.pred datom)
                && Atom.arity anchor = Atom.arity datom
              then
                match Homo.Hom.extend_via_atom Subst.empty anchor datom with
                | None -> acc
                | Some seed ->
                    List.fold_left collect acc (Homo.Hom.all ~seed body indexed)
              else acc)
            delta acc)
        body []
      |> List.rev
    in
    if !Obs.Metrics.enabled then Obs.Metrics.add m_enumerated (List.length trs);
    trs

(* Discovery fans out over the pool in two order-preserving stages
   (DESIGN.md §10): body-hom enumeration per rule, then the satisfaction
   re-check per candidate trigger.  Merging is positional — the per-rule
   lists are concatenated in rule order and the filter keeps the
   candidates' order — and enumeration never consults the failure memo
   (the checks do, under per-trigger keys), so the trigger list, the
   enumeration counters and the memo totals are identical to the
   sequential nesting for every jobs count. *)
let unsatisfied_triggers_in ?delta rules indexed =
  let rule_triggers r =
    match delta with
    | None -> triggers_of r indexed
    | Some delta -> triggers_of_delta r indexed ~delta
  in
  let candidates =
    List.concat (Par.map ~site:"trigger.enumerate" rule_triggers rules)
  in
  let satisfied =
    Par.map ~site:"trigger.satcheck"
      (fun tr -> satisfied_in tr indexed)
      candidates
  in
  List.filter_map
    (fun (tr, sat) -> if sat then None else Some tr)
    (List.combine candidates satisfied)

let unsatisfied_triggers rules inst =
  unsatisfied_triggers_in rules (Homo.Instance.of_atomset inst)

type discovery = Delta | Snapshot | Audit

let discovery = ref Delta

let same_set trs1 trs2 =
  List.length trs1 = List.length trs2
  && List.for_all (fun t1 -> List.exists (equal t1) trs2) trs1

let audit_failure ~what snap del =
  failwith
    (Fmt.str
       "Trigger.%s: delta discovery disagrees with the snapshot oracle (%d \
        delta vs %d snapshot triggers)"
       what (List.length del) (List.length snap))

let observe_discovery ~what trs indexed =
  Obs.Metrics.incr m_discoveries;
  if Obs.Trace.enabled () then
    Obs.Trace.emit
      (Obs.Trace.Trigger_found
         {
           engine = what;
           found = List.length trs;
           size = Homo.Instance.cardinal indexed;
         });
  trs

let discover ?delta rules indexed =
  let trs =
    Obs.Metrics.count_minor_words m_minor_words (fun () ->
        match (!discovery, delta) with
        | Snapshot, _ | _, None -> unsatisfied_triggers_in rules indexed
        | Delta, Some delta -> unsatisfied_triggers_in ~delta rules indexed
        | Audit, Some delta ->
            let snap = unsatisfied_triggers_in rules indexed in
            let del = unsatisfied_triggers_in ~delta rules indexed in
            if not (same_set snap del) then
              audit_failure ~what:"discover" snap del;
            snap)
  in
  observe_discovery ~what:"discover" trs indexed

let discover_all ?delta rules indexed =
  let snapshot () =
    List.concat
      (Par.map ~site:"trigger.enumerate" (fun r -> triggers_of r indexed) rules)
  in
  let trs =
    Obs.Metrics.count_minor_words m_minor_words (fun () ->
        match (!discovery, delta) with
        | Snapshot, _ | _, None -> snapshot ()
        | Delta, Some delta ->
            List.concat
              (Par.map ~site:"trigger.enumerate"
                 (fun r -> triggers_of_delta r indexed ~delta)
                 rules)
        | Audit, Some delta ->
            let snap = snapshot () in
            let del =
              List.concat_map
                (fun r -> triggers_of_delta r indexed ~delta)
                rules
            in
            (* the delta set must be exactly the snapshot triggers whose
               body image touches the delta *)
            let touches tr =
              not
                (Atomset.is_empty
                   (Atomset.inter delta
                      (Subst.apply tr.mapping (Rule.body tr.rule))))
            in
            let expected = List.filter touches snap in
            if not (same_set expected del) then
              audit_failure ~what:"discover_all" expected del;
            (* monotone engines deduplicate by trigger key themselves, so
               the snapshot order can be returned unchanged *)
            snap)
  in
  observe_discovery ~what:"discover_all" trs indexed

let pp ppf tr =
  Fmt.pf ppf "(%s, %a)"
    (if Rule.name tr.rule = "" then "<rule>" else Rule.name tr.rule)
    Subst.pp tr.mapping
