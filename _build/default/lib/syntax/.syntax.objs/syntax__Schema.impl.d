lib/syntax/schema.ml: Atom Atomset Fmt Kb List Map Printf Result Rule String
