test/test_core.ml: Alcotest Array Atom Atomset Chase Corechase Fmt Gen Homo Kb List Modelfinder Printf QCheck QCheck_alcotest Rule Subst Syntax Term Treewidth Ucq Zoo
