examples/quickstart.mli:
