type t = { name : string; body : Atomset.t; left : Term.t; right : Term.t }

let make_set ?(name = "") ~body left right =
  if Atomset.is_empty body then invalid_arg "Egd.make: empty body";
  if Term.is_const left || Term.is_const right then
    invalid_arg "Egd.make: equated sides must be variables";
  let vars = Atomset.vars body in
  if
    not
      (List.exists (Term.equal left) vars
      && List.exists (Term.equal right) vars)
  then invalid_arg "Egd.make: equated variables must occur in the body";
  { name; body; left; right }

let make ?name ~body left right =
  make_set ?name ~body:(Atomset.of_list body) left right

let name e = e.name

let body e = e.body

let sides e = (e.left, e.right)

let rename_apart e =
  let renaming =
    List.fold_left
      (fun s v -> Subst.add v (Term.fresh_var ~hint:(Term.hint v) ()) s)
      Subst.empty (Atomset.vars e.body)
  in
  {
    e with
    body = Subst.apply renaming e.body;
    left = Subst.apply_term renaming e.left;
    right = Subst.apply_term renaming e.right;
  }

let pp ppf e =
  let pp_conj ppf s =
    Fmt.(list ~sep:(any " ∧ ") Atom.pp) ppf (Atomset.to_list s)
  in
  if e.name = "" then
    Fmt.pf ppf "@[%a → %a = %a@]" pp_conj e.body Term.pp e.left Term.pp e.right
  else
    Fmt.pf ppf "@[%s: %a → %a = %a@]" e.name pp_conj e.body Term.pp e.left
      Term.pp e.right
