(** Guardedness-family syntactic classes (Section 4's "varying notions of
    guardedness" that guarantee treewidth-bounded chases, hence bts).

    All predicates operate on single rules and lift to rulesets by
    conjunction. *)

open Syntax

val is_linear : Rule.t -> bool
(** Single body atom. *)

val is_guarded : Rule.t -> bool
(** Some body atom contains every universal variable of the rule. *)

val is_frontier_guarded : Rule.t -> bool
(** Some body atom contains every frontier variable. *)

val is_frontier_one : Rule.t -> bool
(** At most one frontier variable. *)

val is_weakly_guarded : Position.t list -> Rule.t -> bool
(** Some body atom contains every universal variable that occurs only at
    affected positions (pass {!Position.affected_positions} of the whole
    ruleset). *)

val is_weakly_frontier_guarded : Position.t list -> Rule.t -> bool
(** Same with frontier variables. *)

val ruleset_linear : Rule.t list -> bool

val ruleset_guarded : Rule.t list -> bool

val ruleset_frontier_guarded : Rule.t list -> bool

val ruleset_frontier_one : Rule.t list -> bool

val ruleset_weakly_guarded : Rule.t list -> bool

val ruleset_weakly_frontier_guarded : Rule.t list -> bool
