(** Schemas (Section 2): a finite set of relation symbols with arities.

    Atoms do not carry a schema themselves; a [Schema.t] is a consistency
    artefact inferred from, or checked against, atomsets and rulesets. *)

type t

val empty : t

val declare : string -> int -> t -> t
(** @raise Invalid_argument if the predicate is already declared with a
    different arity. *)

val arity : string -> t -> int option

val mem : string -> t -> bool

val preds : t -> (string * int) list
(** Sorted (predicate, arity) list. *)

val of_atomset : Atomset.t -> (t, string) result
(** Infers a schema; [Error msg] if a predicate occurs at two arities. *)

val of_kb : Kb.t -> (t, string) result
(** Infers a schema from facts and rules. *)

val check_atom : t -> Atom.t -> (unit, string) result

val check_atomset : t -> Atomset.t -> (unit, string) result

val check_rule : t -> Rule.t -> (unit, string) result

val check_kb : t -> Kb.t -> (unit, string) result

val union : t -> t -> (t, string) result

val pp : t Fmt.t
