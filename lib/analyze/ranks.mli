(** k-boundedness estimation by bounded restricted-chase runs
    (Delivorias et al., "On the k-Boundedness of the Chase").

    The rank of an atom in a restricted-chase derivation is its
    derivation depth: facts have rank 0, and an atom produced by a
    trigger has rank [1 + max] over the ranks of the trigger's body
    image.  A ruleset is k-bounded when every restricted chase
    terminates within rank k on every instance; that is undecidable to
    certify in general, so this probe runs a budgeted restricted chase
    on the {e given} KB and reports the observed rank profile.  A
    [Fixpoint] outcome is an instance-scoped termination certificate:
    the engine's fair strategy reached a universal model of this KB at
    depth [max_rank]. *)

open Syntax

type profile = {
  outcome : Chase.Variants.outcome;  (** why the probe run stopped *)
  max_rank : int;  (** deepest rank assigned *)
  frontier : (int * int) list;
      (** [(rank, atoms first derived at that rank)], ascending; rank 0
          counts the initial facts *)
  steps : int;  (** rule applications performed by the probe *)
  fixpoint : bool;  (** [outcome = Fixpoint] *)
}

val probe : ?budget:Chase.Variants.budget -> Kb.t -> profile
(** Run the restricted chase under [budget] (default
    {!Chase.Variants.default_budget}) and rank every derived atom. *)

val pp_frontier : (int * int) list Fmt.t
(** ["r0:4 r1:2 …"] — the pinned, single-line rendering used by the
    justification trail. *)
