lib/treewidth/lowerbound.ml: Array Fun Graph Int List Set
