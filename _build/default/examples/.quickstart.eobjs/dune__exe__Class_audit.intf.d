examples/class_audit.mli:
